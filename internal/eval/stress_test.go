package eval

import (
	"testing"

	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestDeepTreeNoStackOverflow: the traversals are iterative, so a
// pathological 200k-deep chain document must evaluate fine.
func TestDeepTreeNoStackOverflow(t *testing.T) {
	const depth = 60_000
	root := xmltree.NewElement("n", "")
	cur := root
	for i := 1; i < depth; i++ {
		cur = cur.AppendChild(xmltree.NewElement("n", ""))
	}
	cur.Label = "leaf"
	prog := xpath.MustCompileString(`//leaf`)
	ans, steps, err := Evaluate(root, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Error("deep leaf not found")
	}
	if want := int64(depth * prog.QListSize()); steps != want {
		t.Errorf("steps = %d, want %d", steps, want)
	}
	// Selection down the same chain.
	sp, err := xpath.CompileSelectString(`//leaf`)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectLocal(root, sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || len(sel[0]) != depth-1 {
		t.Errorf("selected %d nodes (path len %d), want the single deep leaf", len(sel), len(sel[0]))
	}
}

// TestLongFragmentChainSolve: a 2000-fragment chain exercises evalST's
// bottom-up substitution at card(F) far beyond any practical deployment.
func TestLongFragmentChainSolve(t *testing.T) {
	const n = 2000
	root := xmltree.NewElement("n", "")
	cur := root
	var splitPoints []*xmltree.Node
	for i := 1; i < n; i++ {
		cur = cur.AppendChild(xmltree.NewElement("n", ""))
		splitPoints = append(splitPoints, cur)
	}
	cur.AppendChild(xmltree.NewElement("leaf", ""))
	forest := frag.NewForest(root)
	for _, p := range splitPoints {
		if _, err := forest.Split(p); err != nil {
			t.Fatal(err)
		}
	}
	if forest.Count() != n {
		t.Fatalf("count = %d", forest.Count())
	}
	assign := frag.AssignAll(forest, "S")
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(`//leaf`)
	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	ans, work, err := Solve(st, triplets, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Error("leaf not found through a 2000-fragment chain")
	}
	// The solve work is O(|q|·card(F)): comfortably bounded.
	if work > int64(prog.QListSize()*n*20) {
		t.Errorf("solve work %d looks superlinear in card(F)", work)
	}
}

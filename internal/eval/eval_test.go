package eval

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/boolexpr"
	"repro/internal/fixtures"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// example21 is the query of Examples 2.1/3.1-3.3 (text values adjusted to
// this repository's fixture, which stores codes in upper case).
const example21 = `//stock[code/text() = "YHOO"]`

func TestCentralizedOnPortfolio(t *testing.T) {
	doc := fixtures.Portfolio()
	cases := []struct {
		src  string
		want bool
	}{
		{example21, true},
		{`//stock[code/text() = "MSFT"]`, false},
		{`//a && //b`, false},
		{`//broker && //market[name = "NYSE"]`, true},
		{`/portofolio/broker/name = "Merill Lynch"`, true},
		{`//stock[code = "GOOG" && sell = "373"]`, true},
		{`//stock[code = "GOOG" && sell = "999"]`, false},
		{`!(//stock[code = "YHOO"]) || //market`, true},
	}
	for _, c := range cases {
		prog := xpath.MustCompileString(c.src)
		got, steps, err := Evaluate(doc, prog)
		if err != nil {
			t.Errorf("Evaluate(%q): %v", c.src, err)
			continue
		}
		if got != c.want {
			t.Errorf("Evaluate(%q) = %v, want %v", c.src, got, c.want)
		}
		if want := int64(doc.Size() * prog.QListSize()); steps != want {
			t.Errorf("steps for %q = %d, want |T|·|QList| = %d", c.src, steps, want)
		}
	}
}

func TestEvaluateRejectsVirtual(t *testing.T) {
	doc := xmltree.NewElement("r", "", xmltree.NewVirtual(1))
	prog := xpath.MustCompileString(`//a`)
	if _, _, err := Evaluate(doc, prog); err == nil {
		t.Error("Evaluate over a fragment with virtual nodes must fail")
	}
	if _, _, err := BottomUp(xmltree.NewVirtual(2), prog); err == nil {
		t.Error("BottomUp at a virtual root must fail")
	}
	if _, _, err := BottomUp(nil, prog); err == nil {
		t.Error("BottomUp at a nil root must fail")
	}
}

// TestExample33 replays the running example end to end: fragments F0–F3 of
// Fig. 2, the query of Example 2.1, and the unification of Example 3.3,
// which concludes that the query is true.
func TestExample33(t *testing.T) {
	forest, orig, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(example21)

	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	// Leaf fragments (F2, F3) must have fully constant triplets: "the
	// vectors of leaf fragments in the source tree contain no variables".
	for _, leaf := range []xmltree.FragmentID{2, 3} {
		tr := triplets[leaf]
		for _, vec := range [][]*boolexpr.Formula{tr.V, tr.CV, tr.DV} {
			for q, f := range vec {
				if !f.IsConst() {
					t.Errorf("leaf F%d entry %d not constant: %v", leaf, q, f)
				}
			}
		}
	}
	// F1 holds the virtual node for F2, so its formulas may only mention
	// F2's variables — and never CV variables (a parent consumes only V
	// and DV of a child).
	tr1 := triplets[1]
	for _, vec := range [][]*boolexpr.Formula{tr1.V, tr1.CV, tr1.DV} {
		for _, f := range vec {
			for _, v := range f.VarSet() {
				if v.Frag != 2 {
					t.Errorf("F1 formula mentions fragment %d: %v", v.Frag, f)
				}
				if v.Vec == boolexpr.VecCV {
					t.Errorf("F1 formula mentions a CV variable: %v", f)
				}
			}
		}
	}

	ans, work, err := Solve(st, triplets, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !ans {
		t.Error("Example 3.3: query must evaluate to true")
	}
	if work <= 0 {
		t.Error("Solve reported no work")
	}
	// Differential check against the centralized evaluation.
	want, _, err := Evaluate(orig, prog)
	if err != nil {
		t.Fatal(err)
	}
	if ans != want {
		t.Errorf("distributed answer %v != centralized %v", ans, want)
	}
}

func TestSolveMissingTriplet(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(example21)
	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	delete(triplets, 2)
	if _, _, err := Solve(st, triplets, prog); err == nil {
		t.Error("Solve with a missing triplet must fail")
	}
}

func TestSolvePartialLazySemantics(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	st, err := fixtures.Fig2SourceTree(forest)
	if err != nil {
		t.Fatal(err)
	}
	// The LazyParBoX example of Section 4: a query answered by depth ≤ 1
	// fragments alone.
	prog := xpath.MustCompileString(`/portofolio/broker/name = "Merill Lynch"`)
	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	partial := map[xmltree.FragmentID]Triplet{0: triplets[0], 1: triplets[1], 3: triplets[3]}
	ans, _, resolved, err := SolvePartial(st, partial, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !resolved || !ans {
		t.Errorf("SolvePartial(depth ≤ 1) = (%v, resolved=%v), want (true, true)", ans, resolved)
	}
	// The YHOO query needs F3 (it is satisfied only there); without F3 and
	// F2 the answer must stay unresolved.
	prog2 := xpath.MustCompileString(example21)
	triplets2, _, err := EvaluateAll(forest, prog2)
	if err != nil {
		t.Fatal(err)
	}
	partial2 := map[xmltree.FragmentID]Triplet{0: triplets2[0]}
	_, _, resolved2, err := SolvePartial(st, partial2, prog2)
	if err != nil {
		t.Fatal(err)
	}
	if resolved2 {
		t.Error("SolvePartial without F1/F2/F3 must stay unresolved for the YHOO query")
	}
}

func TestResolveTriplet(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(example21)
	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	// F1 resolved with F2's (constant) triplet must become constant.
	resolved, _, err := ResolveTriplet(1, triplets[1], map[xmltree.FragmentID]Triplet{2: triplets[2]}, prog)
	if err != nil {
		t.Fatal(err)
	}
	for q, f := range resolved.V {
		if !f.IsConst() {
			t.Errorf("resolved V[%d] not constant: %v", q, f)
		}
	}
	// Without the sub-triplet it must fail with ErrUnresolved.
	if _, _, err := ResolveTriplet(1, triplets[1], nil, prog); !errors.Is(err, ErrUnresolved) {
		t.Errorf("ResolveTriplet without subs: err = %v, want ErrUnresolved", err)
	}
}

func TestTripletCodec(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(example21)
	triplets, _, err := EvaluateAll(forest, prog)
	if err != nil {
		t.Fatal(err)
	}
	for id, tr := range triplets {
		enc := tr.Encode()
		got, err := DecodeTriplet(enc)
		if err != nil {
			t.Errorf("F%d: %v", id, err)
			continue
		}
		if !got.Equal(tr) {
			t.Errorf("F%d: triplet codec round trip mismatch", id)
		}
		if tr.EncodedSize() != len(enc) {
			t.Errorf("F%d: EncodedSize %d != len %d", id, tr.EncodedSize(), len(enc))
		}
	}
	if _, err := DecodeTriplet(nil); err == nil {
		t.Error("DecodeTriplet(nil) must fail")
	}
	if _, err := DecodeTriplet(append(triplets[0].Encode(), 1)); err == nil {
		t.Error("trailing bytes must fail")
	}
}

// TestPropCentralizedMatchesRawSemantics is the differential test of the
// evaluator: Procedure bottomUp over a complete tree agrees with the naive
// set-based interpreter on random trees and random queries.
func TestPropCentralizedMatchesRawSemantics(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 1 + int(sizeRaw%60)})
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		want := xpath.EvalRaw(q, tree)
		got, _, err := Evaluate(tree, xpath.Compile(q))
		if err != nil {
			t.Logf("Evaluate(%q): %v", q.String(), err)
			return false
		}
		if got != want {
			t.Logf("query %q tree %v: bottomUp=%v raw=%v", q.String(), tree, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 600}); err != nil {
		t.Error(err)
	}
}

// TestPropDistributedMatchesCentralized is the paper's central claim as a
// property: for ANY fragmentation of ANY tree and ANY XBL query, partial
// evaluation of the fragments plus evalST equals centralized evaluation.
func TestPropDistributedMatchesCentralized(t *testing.T) {
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%80)})
		orig := tree.Clone()
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%12)); err != nil {
			return false
		}
		// Random assignment over up to 4 sites.
		sites := []frag.SiteID{"S0", "S1", "S2", "S3"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		st, err := frag.BuildSourceTree(forest, assign)
		if err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)
		triplets, _, err := EvaluateAll(forest, prog)
		if err != nil {
			return false
		}
		got, _, err := Solve(st, triplets, prog)
		if err != nil {
			t.Logf("Solve(%q): %v", q.String(), err)
			return false
		}
		want, _, err := Evaluate(orig, prog)
		if err != nil {
			return false
		}
		if got != want {
			t.Logf("query %q: distributed=%v centralized=%v (seed %d)", q.String(), got, want, seed)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropTripletCodecRoundTrip: triplets of random fragmented evaluations
// survive the wire codec.
func TestPropTripletCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 30})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 4); err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)
		triplets, _, err := EvaluateAll(forest, prog)
		if err != nil {
			return false
		}
		for _, tr := range triplets {
			got, err := DecodeTriplet(tr.Encode())
			if err != nil || !got.Equal(tr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestStepsAccounting pins the total-computation measure: BottomUp performs
// exactly |F_j|·|QList| steps per fragment, virtual placeholders included.
func TestStepsAccounting(t *testing.T) {
	forest, _, err := fixtures.Fig2Forest()
	if err != nil {
		t.Fatal(err)
	}
	prog := xpath.MustCompileString(example21)
	for _, id := range forest.IDs() {
		fr, _ := forest.Fragment(id)
		_, steps, err := BottomUp(fr.Root, prog)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(fr.Size() * prog.QListSize()); steps != want {
			t.Errorf("F%d: steps = %d, want %d", id, steps, want)
		}
	}
}

// TestTripletSizeBound verifies the communication bound: a fragment's
// triplet size is O(|q|·(1+card(F_j))) — it grows with the number of its
// OWN virtual nodes, never with fragment size.
func TestTripletSizeBound(t *testing.T) {
	prog := xpath.MustCompileString(example21)
	build := func(extra int) int {
		// A fragment with one virtual node and `extra` padding nodes.
		root := xmltree.NewElement("r", "")
		for i := 0; i < extra; i++ {
			root.AppendChild(xmltree.NewElement("pad", ""))
		}
		root.AppendChild(xmltree.NewVirtual(7))
		tr, _, err := BottomUp(root, prog)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Size()
	}
	small, large := build(2), build(2000)
	if small != large {
		t.Errorf("triplet size depends on fragment size: %d vs %d", small, large)
	}
}

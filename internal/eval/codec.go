package eval

import (
	"fmt"

	"repro/internal/boolexpr"
)

// Encode serializes the triplet as its three formula vectors, V then CV
// then DV. The byte length is exactly what a participating site pays to
// ship its partial answer to the coordinator.
func (t Triplet) Encode() []byte {
	dst := boolexpr.AppendEncodedVector(nil, t.V)
	dst = boolexpr.AppendEncodedVector(dst, t.CV)
	return boolexpr.AppendEncodedVector(dst, t.DV)
}

// EncodedSize returns len(Encode()) cheaply enough for accounting.
func (t Triplet) EncodedSize() int { return len(t.Encode()) }

// DecodeTriplet parses a triplet produced by Encode, requiring all three
// vectors to have the same arity.
func DecodeTriplet(buf []byte) (Triplet, error) {
	d := boolexpr.NewDecoder(buf)
	var t Triplet
	var err error
	if t.V, err = d.DecodeVector(); err != nil {
		return Triplet{}, fmt.Errorf("eval: triplet V: %w", err)
	}
	if t.CV, err = d.DecodeVector(); err != nil {
		return Triplet{}, fmt.Errorf("eval: triplet CV: %w", err)
	}
	if t.DV, err = d.DecodeVector(); err != nil {
		return Triplet{}, fmt.Errorf("eval: triplet DV: %w", err)
	}
	if d.Remaining() != 0 {
		return Triplet{}, fmt.Errorf("eval: triplet has %d trailing bytes", d.Remaining())
	}
	if len(t.CV) != len(t.V) || len(t.DV) != len(t.V) {
		return Triplet{}, fmt.Errorf("eval: triplet vectors disagree on arity (%d/%d/%d)",
			len(t.V), len(t.CV), len(t.DV))
	}
	return t, nil
}

package eval

import (
	"fmt"

	"repro/internal/boolexpr"
)

// Encode serializes the triplet as its three formula vectors, V then CV
// then DV. The byte length is exactly what a participating site pays to
// ship its partial answer to the coordinator. The buffer is presized via
// EncodedSize, so encoding performs exactly one allocation.
func (t Triplet) Encode() []byte {
	return t.AppendEncoded(make([]byte, 0, t.EncodedSize()))
}

// AppendEncoded appends the wire encoding of the triplet to dst, for
// callers batching several triplets into one pooled message buffer.
func (t Triplet) AppendEncoded(dst []byte) []byte {
	dst = boolexpr.AppendEncodedVector(dst, t.V)
	dst = boolexpr.AppendEncodedVector(dst, t.CV)
	return boolexpr.AppendEncodedVector(dst, t.DV)
}

// EncodedSize returns len(Encode()) without building the buffer, cheaply
// enough for accounting and presizing.
func (t Triplet) EncodedSize() int {
	return boolexpr.EncodedSizeVector(t.V) +
		boolexpr.EncodedSizeVector(t.CV) +
		boolexpr.EncodedSizeVector(t.DV)
}

// DecodeTriplet parses a triplet produced by Encode, requiring all three
// vectors to have the same arity.
func DecodeTriplet(buf []byte) (Triplet, error) {
	return decodeTriplet(boolexpr.NewDecoder(buf))
}

// DecodeTripletSlab is DecodeTriplet allocating the decoded formulas from
// slab — the per-connection (or per-run) scratch-slab decode path: a
// coordinator draining many triplets through one slab pays one heap
// allocation per slab chunk instead of one per formula node.
func DecodeTripletSlab(buf []byte, slab *boolexpr.Slab) (Triplet, error) {
	return decodeTriplet(boolexpr.NewDecoderSlab(buf, slab))
}

func decodeTriplet(d *boolexpr.Decoder) (Triplet, error) {
	var t Triplet
	var err error
	if t.V, err = d.DecodeVector(); err != nil {
		return Triplet{}, fmt.Errorf("eval: triplet V: %w", err)
	}
	if t.CV, err = d.DecodeVector(); err != nil {
		return Triplet{}, fmt.Errorf("eval: triplet CV: %w", err)
	}
	if t.DV, err = d.DecodeVector(); err != nil {
		return Triplet{}, fmt.Errorf("eval: triplet DV: %w", err)
	}
	if d.Remaining() != 0 {
		return Triplet{}, fmt.Errorf("eval: triplet has %d trailing bytes", d.Remaining())
	}
	if len(t.CV) != len(t.V) || len(t.DV) != len(t.V) {
		return Triplet{}, fmt.Errorf("eval: triplet vectors disagree on arity (%d/%d/%d)",
			len(t.V), len(t.CV), len(t.DV))
	}
	return t, nil
}

// DecodeTripletArena parses the same wire format directly into an arena:
// every formula is hash-consed on arrival, so triplets decoded from many
// sites into one coordinator arena share their common subformulas and
// compare by id. The view-maintenance layer decodes through this path.
func DecodeTripletArena(a *boolexpr.Arena, buf []byte) (ArenaTriplet, error) {
	d := boolexpr.NewDecoder(buf)
	var t ArenaTriplet
	var err error
	if t.V, err = d.DecodeVectorID(a); err != nil {
		return ArenaTriplet{}, fmt.Errorf("eval: triplet V: %w", err)
	}
	if t.CV, err = d.DecodeVectorID(a); err != nil {
		return ArenaTriplet{}, fmt.Errorf("eval: triplet CV: %w", err)
	}
	if t.DV, err = d.DecodeVectorID(a); err != nil {
		return ArenaTriplet{}, fmt.Errorf("eval: triplet DV: %w", err)
	}
	if d.Remaining() != 0 {
		return ArenaTriplet{}, fmt.Errorf("eval: triplet has %d trailing bytes", d.Remaining())
	}
	if len(t.CV) != len(t.V) || len(t.DV) != len(t.V) {
		return ArenaTriplet{}, fmt.Errorf("eval: triplet vectors disagree on arity (%d/%d/%d)",
			len(t.V), len(t.CV), len(t.DV))
	}
	return t, nil
}

package eval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// The differential property tests of the perf rewrite: the bitset/arena
// evaluator (BottomUp, Solve) must agree with the preserved pointer-formula
// reference implementation (LegacyBottomUp, LegacySolve) on random trees,
// random fragmentations and random QLists. Structural identity of the
// produced formulas is NOT required (the arena may normalize operand lists
// differently); logical equivalence is, and is checked per entry.

// equivalentFormulas reports logical equivalence of two formulas: equal
// constants, or agreement under a battery of assignments over their
// combined variables (exhaustive up to 10 variables, randomized above).
func equivalentFormulas(r *rand.Rand, f, g *boolexpr.Formula) bool {
	fv, fok := f.ConstValue()
	gv, gok := g.ConstValue()
	if fok || gok {
		return fok && gok && fv == gv
	}
	seen := make(map[boolexpr.Var]bool)
	var vars []boolexpr.Var
	for _, h := range []*boolexpr.Formula{f, g} {
		for _, v := range h.VarSet() {
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	check := func(env boolexpr.Assignment) bool {
		return f.Eval(env.Total) == g.Eval(env.Total)
	}
	if len(vars) <= 10 {
		for mask := 0; mask < 1<<len(vars); mask++ {
			env := make(boolexpr.Assignment, len(vars))
			for i, v := range vars {
				env[v] = mask&(1<<i) != 0
			}
			if !check(env) {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 64; trial++ {
		env := make(boolexpr.Assignment, len(vars))
		for _, v := range vars {
			env[v] = r.Intn(2) == 0
		}
		if !check(env) {
			return false
		}
	}
	return true
}

func equivalentTriplets(r *rand.Rand, t, u Triplet) bool {
	eq := func(a, b []*boolexpr.Formula) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !equivalentFormulas(r, a[i], b[i]) {
				return false
			}
		}
		return true
	}
	return eq(t.V, u.V) && eq(t.CV, u.CV) && eq(t.DV, u.DV)
}

// TestPropBottomUpMatchesLegacy: on every fragment of a random
// fragmentation, the two-plane BottomUp and the pointer LegacyBottomUp
// produce logically equivalent triplets and identical step counts.
func TestPropBottomUpMatchesLegacy(t *testing.T) {
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%80)})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%10)); err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			got, gotSteps, err := BottomUp(fr.Root, prog)
			if err != nil {
				t.Logf("BottomUp(F%d): %v", id, err)
				return false
			}
			want, wantSteps, err := LegacyBottomUp(fr.Root, prog)
			if err != nil {
				t.Logf("LegacyBottomUp(F%d): %v", id, err)
				return false
			}
			if gotSteps != wantSteps {
				t.Logf("F%d steps: arena=%d legacy=%d (query %q)", id, gotSteps, wantSteps, q.String())
				return false
			}
			if !equivalentTriplets(r, got, want) {
				t.Logf("F%d triplets diverge (query %q, seed %d)", id, q.String(), seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropSolveMatchesLegacy: the memoized arena solve agrees with the
// reference per-entry substitution on the full pipeline — and both agree
// with centralized evaluation of the unfragmented tree.
func TestPropSolveMatchesLegacy(t *testing.T) {
	f := func(seed int64, sizeRaw, splitRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 2 + int(sizeRaw%80)})
		orig := tree.Clone()
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 1+int(splitRaw%12)); err != nil {
			return false
		}
		sites := []frag.SiteID{"S0", "S1", "S2", "S3"}
		assign := make(frag.Assignment)
		for _, id := range forest.IDs() {
			assign[id] = sites[r.Intn(len(sites))]
		}
		st, err := frag.BuildSourceTree(forest, assign)
		if err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)

		newTriplets, _, err := EvaluateAll(forest, prog)
		if err != nil {
			return false
		}
		legacyTriplets := make(map[xmltree.FragmentID]Triplet, forest.Count())
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			lt, _, err := LegacyBottomUp(fr.Root, prog)
			if err != nil {
				return false
			}
			legacyTriplets[id] = lt
		}

		got, _, err := Solve(st, newTriplets, prog)
		if err != nil {
			t.Logf("Solve(%q): %v", q.String(), err)
			return false
		}
		want, _, err := LegacySolve(st, legacyTriplets, prog)
		if err != nil {
			t.Logf("LegacySolve(%q): %v", q.String(), err)
			return false
		}
		central, _, err := Evaluate(orig, prog)
		if err != nil {
			return false
		}
		if got != want || got != central {
			t.Logf("query %q: arena=%v legacy=%v central=%v (seed %d)", q.String(), got, want, central, seed)
			return false
		}
		// Cross-wiring must also hold: legacy triplets through the arena
		// solve and arena triplets through the legacy solve.
		cross1, _, err := Solve(st, legacyTriplets, prog)
		if err != nil || cross1 != want {
			t.Logf("query %q: Solve over legacy triplets = %v/%v, want %v", q.String(), cross1, err, want)
			return false
		}
		cross2, _, err := LegacySolve(st, newTriplets, prog)
		if err != nil || cross2 != want {
			t.Logf("query %q: LegacySolve over arena triplets = %v/%v, want %v", q.String(), cross2, err, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestPropTripletWireCompat: a triplet encoded from the arena evaluator
// decodes identically through the pointer decoder and the arena decoder,
// and re-encodes to the same bytes — the two representations are
// interchangeable on the wire.
func TestPropTripletWireCompat(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 40})
		forest := frag.NewForest(tree)
		if err := forest.SplitRandom(r, 5); err != nil {
			return false
		}
		q := xpath.RandomQuery(r, xpath.RandomSpec{AllowNot: true})
		prog := xpath.Compile(q)
		for _, id := range forest.IDs() {
			fr, _ := forest.Fragment(id)
			tr, _, err := BottomUp(fr.Root, prog)
			if err != nil {
				return false
			}
			enc := tr.Encode()
			if len(enc) != tr.EncodedSize() {
				t.Logf("EncodedSize %d != len %d", tr.EncodedSize(), len(enc))
				return false
			}
			ptr, err := DecodeTriplet(enc)
			if err != nil || !ptr.Equal(tr) {
				return false
			}
			arena := boolexpr.NewArena()
			at, err := DecodeTripletArena(arena, enc)
			if err != nil {
				return false
			}
			if !at.Export(arena).Equal(tr) {
				t.Logf("arena decode diverges (seed %d)", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package eval

import (
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// This file implements the spine recomputation kernel for incremental
// triplet maintenance (the update half of Section 5): after an in-place
// edit inside a fragment, the Boolean formulas of Procedure bottomUp can
// only change on the touched-node-to-root spines, so re-evaluating those
// O(depth + changed) nodes — instead of the whole fragment — reproduces
// the fragment's triplet exactly.
//
// The kernel applies on the dominant serving shape: a virtual-free
// fragment under a single-word lane kernel (≤64 fused lanes). There the
// whole per-node state of bottomUp is two machine words — the node's V
// word and its outgoing DV word — so a Plane (the per-node word map) is
// a few bytes per node and a spine step is one table OR over the
// children plus one kern.EvalConstWord. The recurrence is bit-for-bit
// the one bottomUpArena1 runs:
//
//	cw   = OR of the children's V words
//	dwIn = OR of the children's outgoing DV words
//	vw   = kern.EvalConstWord(cw, dwIn, label, text)
//	dwOut = dwIn | vw            (line 17 of Procedure bottomUp)
//
// so a patched plane's root words — and the triplet encoded from them —
// are byte-equal to a from-scratch recomputation (FuzzSpinePatch pins
// this differentially).

// planeWords is the retained bottomUp state of one node: its V word and
// its outgoing DV word (subtree DV including the node's own V).
type planeWords struct {
	vw, dw uint64
}

// Plane is the per-node formula plane of one (fragment, program) pair,
// keyed by node identity. It is valid only for the exact tree it was
// built from (in-place mutations keep node pointers stable; a reloaded
// or re-fragmented tree needs a rebuild — compare Root()).
//
// A Plane is not safe for concurrent use; the maintenance layer holds
// its per-fragment lock across Patch.
type Plane struct {
	kern  *xpath.LaneKernel
	lanes int
	root  *xmltree.Node
	nodes map[*xmltree.Node]planeWords
}

// BuildPlane computes the full per-node plane for the fragment rooted at
// root under prog, in one bottom-up traversal. ok is false when the
// fragment is outside the kernel's domain — a virtual node present, or a
// program wider than one word — in which case maintenance falls back to
// full recomputation.
func BuildPlane(root *xmltree.Node, prog *xpath.Program) (p *Plane, steps int64, ok bool) {
	kern := prog.Kernel()
	if root == nil || root.Virtual || kern == nil || kern.Words() != 1 {
		return nil, 0, false
	}
	p = &Plane{
		kern:  kern,
		lanes: len(prog.Subs),
		root:  root,
		nodes: make(map[*xmltree.Node]planeWords, root.Size()),
	}
	steps, ok = p.evalSubtree(root)
	if !ok {
		return nil, steps, false
	}
	return p, steps, true
}

// Root returns the fragment root the plane was built from; callers
// validate it against the live fragment before patching.
func (p *Plane) Root() *xmltree.Node { return p.root }

// Len returns the number of nodes the plane holds words for.
func (p *Plane) Len() int { return len(p.nodes) }

// evalSubtree evaluates every node of the subtree rooted at n into the
// plane, iteratively (deep fragments must not overflow the stack). ok is
// false on the first virtual node.
func (p *Plane) evalSubtree(n *xmltree.Node) (steps int64, ok bool) {
	type frame struct {
		node *xmltree.Node
		next int
	}
	stack := []frame{{node: n}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		descended := false
		for f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			f.next++
			if c.Virtual {
				return steps, false
			}
			stack = append(stack, frame{node: c})
			descended = true
			break
		}
		if descended {
			continue
		}
		node := f.node
		stack = stack[:len(stack)-1]
		steps += int64(p.lanes)
		var cw, dw uint64
		for _, c := range node.Children {
			e := p.nodes[c]
			cw |= e.vw
			dw |= e.dw
		}
		vw := p.kern.EvalConstWord(cw, dw, node.Label, node.Text)
		p.nodes[node] = planeWords{vw: vw, dw: dw | vw}
	}
	return steps, true
}

// RootWords returns the plane's current root triplet words (V, CV, DV) —
// the single-word form of the fragment's triplet.
func (p *Plane) RootWords() (vw, cw, dw uint64) {
	e := p.nodes[p.root]
	for _, c := range p.root.Children {
		cw |= p.nodes[c].vw
	}
	return e.vw, cw, e.dw
}

// Patch recomputes the plane after a batch of in-place edits, walking
// only the touched-node-to-root spines:
//
//   - fresh: roots of newly inserted subtrees, evaluated from scratch
//     (an insNode subtree costs its own size, nothing more);
//   - dirty: nodes whose evaluation inputs changed in place — a setText
//     target, or the parent a child was inserted under or deleted from;
//   - removed: roots of detached subtrees, whose entries are pruned.
//
// Every proper ancestor of a fresh or dirty node is re-evaluated from
// its children's retained words, deepest first, so the total work is
// O(depth·fanout + inserted) node evaluations. ok is false when the
// patch left the kernel's domain (a virtual node appeared, or a node's
// children are unknown to the plane — a stale plane); the caller must
// then discard the plane and recompute in full.
func (p *Plane) Patch(fresh, dirty, removed []*xmltree.Node) (steps int64, ok bool) {
	for _, r := range removed {
		r.Walk(func(n *xmltree.Node) { delete(p.nodes, n) })
	}
	for _, r := range fresh {
		s, ok := p.evalSubtree(r)
		steps += s
		if !ok {
			return steps, false
		}
	}
	// The recompute set: dirty nodes plus every proper ancestor of a
	// fresh or dirty node, deduped, ordered deepest first so children's
	// words are final before a parent reads them.
	type spineNode struct {
		node  *xmltree.Node
		depth int
	}
	depthOf := func(n *xmltree.Node) int {
		d := 0
		for m := n; m.Parent != nil; m = m.Parent {
			d++
		}
		return d
	}
	seen := make(map[*xmltree.Node]bool, 2*len(dirty)+2*len(fresh))
	var spine []spineNode
	add := func(n *xmltree.Node) {
		if !seen[n] {
			seen[n] = true
			spine = append(spine, spineNode{node: n, depth: depthOf(n)})
		}
	}
	for _, n := range dirty {
		add(n)
		for m := n.Parent; m != nil; m = m.Parent {
			add(m)
		}
	}
	for _, n := range fresh {
		for m := n.Parent; m != nil; m = m.Parent {
			add(m)
		}
	}
	// Insertion sort by descending depth: spines are short (O(depth))
	// and arrive nearly sorted (each chain is emitted root-ward).
	for i := 1; i < len(spine); i++ {
		for j := i; j > 0 && spine[j].depth > spine[j-1].depth; j-- {
			spine[j], spine[j-1] = spine[j-1], spine[j]
		}
	}
	for _, sn := range spine {
		node := sn.node
		if node.Virtual {
			return steps, false
		}
		steps += int64(p.lanes)
		var cw, dw uint64
		for _, c := range node.Children {
			if c.Virtual {
				return steps, false
			}
			e, present := p.nodes[c]
			if !present {
				return steps, false
			}
			cw |= e.vw
			dw |= e.dw
		}
		vw := p.kern.EvalConstWord(cw, dw, node.Label, node.Text)
		p.nodes[node] = planeWords{vw: vw, dw: dw | vw}
	}
	return steps, true
}

// ConstTriplet materializes the single-word root words as an all-constant
// pointer triplet — the same shape (and therefore the same encoding) a
// full BottomUp produces for a virtual-free fragment.
func ConstTriplet(n int, vw, cw, dw uint64) Triplet {
	a := getArena()
	t := constArenaTriplet1(a, n, vw, cw, dw).Export(a)
	putArena(a)
	return t
}

// TripletDelta reports which lanes flipped at a fragment root after an
// update: the XOR of the old and new root words of each vector. The zero
// delta is the maintenance short-circuit — the update cannot change any
// cached query answer.
type TripletDelta struct {
	V, CV, DV uint64
}

// Zero reports whether no lane flipped.
func (d TripletDelta) Zero() bool { return d.V == 0 && d.CV == 0 && d.DV == 0 }

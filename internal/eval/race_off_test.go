//go:build !race

package eval

// raceEnabled reports whether the race runtime is active; allocation
// pinning is skipped there because the detector allocates on its own.
const raceEnabled = false

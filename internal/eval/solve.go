package eval

import (
	"errors"
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrUnresolved is returned by Solve when a triplet's formulas cannot be
// reduced to constants — some referenced fragment's triplet is missing.
var ErrUnresolved = errors.New("eval: unresolved variables in the equation system")

// Solve is Procedure evalST: a single bottom-up traversal of the source
// tree that unifies the variables of each fragment's triplet with its
// sub-fragments' computed values, and returns the answer — the value of
// the last QList entry at the root fragment. All fragments of st must have
// a triplet; the returned work is the number of formula nodes visited,
// which realizes the paper's O(|q|·card(F)) bound for the third phase.
func Solve(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (bool, int64, error) {
	ans, work, resolved, err := solve(st, triplets, prog, true)
	if err != nil {
		return false, work, err
	}
	if !resolved {
		return false, work, ErrUnresolved
	}
	return ans, work, nil
}

// SolvePartial is the relaxation LazyParBoX uses: only the fragments
// evaluated so far have triplets. It substitutes what it can; resolved
// reports whether the root answer already folded to a constant (in which
// case deeper fragments need not be evaluated at all).
func SolvePartial(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (ans bool, work int64, resolved bool, err error) {
	return solve(st, triplets, prog, false)
}

func solve(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program, needAll bool) (bool, int64, bool, error) {
	n := len(prog.Subs)
	root := st.Root()
	env := make(map[boolexpr.Var]*boolexpr.Formula, 2*n*len(triplets))
	lookup := func(v boolexpr.Var) (*boolexpr.Formula, bool) {
		f, ok := env[v]
		return f, ok
	}
	var work int64
	var rootV []*boolexpr.Formula

	topo := st.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- { // children before parents
		id := topo[i]
		t, ok := triplets[id]
		if !ok {
			if needAll {
				return false, work, false, fmt.Errorf("eval: missing triplet for fragment %d", id)
			}
			continue
		}
		if len(t.V) != n || len(t.DV) != n {
			return false, work, false, fmt.Errorf("eval: fragment %d triplet has wrong arity", id)
		}
		var resolvedV []*boolexpr.Formula
		for _, vec := range []struct {
			kind boolexpr.VecKind
			fs   []*boolexpr.Formula
		}{
			{boolexpr.VecV, t.V},
			{boolexpr.VecDV, t.DV},
		} {
			for q, f := range vec.fs {
				work += int64(f.Size())
				g := f.Subst(lookup)
				env[boolexpr.Var{Frag: int32(id), Vec: vec.kind, Q: int32(q)}] = g
				if vec.kind == boolexpr.VecV {
					if resolvedV == nil {
						resolvedV = make([]*boolexpr.Formula, n)
					}
					resolvedV[q] = g
				}
			}
		}
		if id == root {
			rootV = resolvedV
		}
	}
	if rootV == nil {
		return false, work, false, fmt.Errorf("eval: missing triplet for root fragment %d", root)
	}
	ansF := rootV[prog.Root()]
	if v, ok := ansF.ConstValue(); ok {
		return v, work, true, nil
	}
	return false, work, false, nil
}

// SolveMulti solves the equation system once and reads off the values of
// several entries at the root fragment — the third phase of batch
// evaluation, where one shared QList answers many queries.
func SolveMulti(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program, roots []int32) ([]bool, int64, error) {
	vecs, work, err := SolveAll(st, triplets, prog)
	if err != nil {
		return nil, work, err
	}
	rootVec, ok := vecs[st.Root()]
	if !ok {
		return nil, work, fmt.Errorf("eval: missing root fragment %d", st.Root())
	}
	out := make([]bool, len(roots))
	for i, idx := range roots {
		if idx < 0 || int(idx) >= len(rootVec.V) {
			return nil, work, fmt.Errorf("eval: root index %d out of range", idx)
		}
		out[i] = rootVec.V[idx]
	}
	return out, work, nil
}

// SolveAll solves the equation system like Solve but returns the resolved
// constant V/DV vectors of EVERY fragment — the values pass 2 of
// SelectParBoX distributes so that guards at virtual nodes become plain
// booleans.
func SolveAll(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (map[xmltree.FragmentID]BoolVecs, int64, error) {
	n := len(prog.Subs)
	env := make(map[boolexpr.Var]*boolexpr.Formula, 2*n*len(triplets))
	lookup := func(v boolexpr.Var) (*boolexpr.Formula, bool) {
		f, ok := env[v]
		return f, ok
	}
	out := make(map[xmltree.FragmentID]BoolVecs, len(triplets))
	var work int64
	topo := st.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		t, ok := triplets[id]
		if !ok {
			return nil, work, fmt.Errorf("eval: missing triplet for fragment %d", id)
		}
		if len(t.V) != n || len(t.DV) != n {
			return nil, work, fmt.Errorf("eval: fragment %d triplet has wrong arity", id)
		}
		bv := BoolVecs{V: make([]bool, n), DV: make([]bool, n)}
		for q := 0; q < n; q++ {
			work += int64(t.V[q].Size() + t.DV[q].Size())
			rv := t.V[q].Subst(lookup)
			rd := t.DV[q].Subst(lookup)
			cv, okv := rv.ConstValue()
			cd, okd := rd.ConstValue()
			if !okv || !okd {
				return nil, work, fmt.Errorf("eval: fragment %d: %w", id, ErrUnresolved)
			}
			bv.V[q], bv.DV[q] = cv, cd
			env[boolexpr.Var{Frag: int32(id), Vec: boolexpr.VecV, Q: int32(q)}] = rv
			env[boolexpr.Var{Frag: int32(id), Vec: boolexpr.VecDV, Q: int32(q)}] = rd
		}
		out[id] = bv
	}
	return out, work, nil
}

// ResolveTriplet substitutes the fully resolved triplets of a fragment's
// sub-fragments into its own triplet, producing a variable-free triplet.
// This is the per-site unification step of Procedure evalDistrST
// (FullDistParBoX): "no variables appear in the resulting triplet".
func ResolveTriplet(id xmltree.FragmentID, own Triplet, subs map[xmltree.FragmentID]Triplet, prog *xpath.Program) (Triplet, int64, error) {
	n := len(prog.Subs)
	env := make(map[boolexpr.Var]*boolexpr.Formula, 2*n*len(subs))
	for sub, t := range subs {
		if len(t.V) != n || len(t.DV) != n {
			return Triplet{}, 0, fmt.Errorf("eval: sub-fragment %d triplet has wrong arity", sub)
		}
		for q := 0; q < n; q++ {
			env[boolexpr.Var{Frag: int32(sub), Vec: boolexpr.VecV, Q: int32(q)}] = t.V[q]
			env[boolexpr.Var{Frag: int32(sub), Vec: boolexpr.VecDV, Q: int32(q)}] = t.DV[q]
			env[boolexpr.Var{Frag: int32(sub), Vec: boolexpr.VecCV, Q: int32(q)}] = t.CV[q]
		}
	}
	lookup := func(v boolexpr.Var) (*boolexpr.Formula, bool) {
		f, ok := env[v]
		return f, ok
	}
	var work int64
	out := Triplet{
		V:  make([]*boolexpr.Formula, n),
		CV: make([]*boolexpr.Formula, n),
		DV: make([]*boolexpr.Formula, n),
	}
	for q := 0; q < n; q++ {
		work += int64(own.V[q].Size() + own.CV[q].Size() + own.DV[q].Size())
		out.V[q] = own.V[q].Subst(lookup)
		out.CV[q] = own.CV[q].Subst(lookup)
		out.DV[q] = own.DV[q].Subst(lookup)
	}
	for q := 0; q < n; q++ {
		for _, f := range []*boolexpr.Formula{out.V[q], out.CV[q], out.DV[q]} {
			if !f.IsConst() {
				return Triplet{}, work, fmt.Errorf("eval: fragment %d: %w: %v", id, ErrUnresolved, f)
			}
		}
	}
	return out, work, nil
}

package eval

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// ErrUnresolved is returned by Solve when a triplet's formulas cannot be
// reduced to constants — some referenced fragment's triplet is missing.
var ErrUnresolved = errors.New("eval: unresolved variables in the equation system")

// solveScratch pools the substitution environment and the import memo of
// one evalST run. A steady-state serving round solves one system per
// flush; clear() keeps the maps' bucket storage, so the round reuses the
// previous round's capacity instead of re-growing two maps per solve.
type solveScratch struct {
	env  map[boolexpr.Var]boolexpr.NodeID
	memo map[*boolexpr.Formula]boolexpr.NodeID
}

var solveScratchPool = sync.Pool{New: func() any {
	return &solveScratch{
		env:  make(map[boolexpr.Var]boolexpr.NodeID),
		memo: make(map[*boolexpr.Formula]boolexpr.NodeID),
	}
}}

func getSolveScratch() *solveScratch { return solveScratchPool.Get().(*solveScratch) }

func putSolveScratch(s *solveScratch) {
	clear(s.env)
	clear(s.memo)
	solveScratchPool.Put(s)
}

// Solve is Procedure evalST: a single bottom-up traversal of the source
// tree that unifies the variables of each fragment's triplet with its
// sub-fragments' computed values, and returns the answer — the value of
// the last QList entry at the root fragment. All fragments of st must have
// a triplet; the returned work is the number of formula nodes visited,
// which realizes the paper's O(|q|·card(F)) bound for the third phase.
//
// Internally the triplets are interned into one arena (deduplicating
// structurally equal formulas across fragments) and substitution is
// memoized per (node, fragment-generation), so shared subformulas are
// rewritten once instead of once per occurrence.
func Solve(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (bool, int64, error) {
	a := getArena()
	defer putArena(a)
	sc := getSolveScratch()
	defer putSolveScratch(sc)
	ats := importTriplets(a, triplets, sc.memo)
	ans, work, resolved, err := solveArenaEnv(st, a, ats, prog, true, sc.env)
	if err != nil {
		return false, work, err
	}
	if !resolved {
		return false, work, ErrUnresolved
	}
	return ans, work, nil
}

// SolveArena is Solve over triplets already interned in a shared arena —
// the entry point for callers that keep long-lived arena state (the view
// layer) and skip the pointer round trip entirely.
func SolveArena(st *frag.SourceTree, a *boolexpr.Arena, triplets map[xmltree.FragmentID]ArenaTriplet, prog *xpath.Program) (bool, int64, error) {
	sc := getSolveScratch()
	defer putSolveScratch(sc)
	ans, work, resolved, err := solveArenaEnv(st, a, triplets, prog, true, sc.env)
	if err != nil {
		return false, work, err
	}
	if !resolved {
		return false, work, ErrUnresolved
	}
	return ans, work, nil
}

// SolvePartial is the relaxation LazyParBoX uses: only the fragments
// evaluated so far have triplets. It substitutes what it can; resolved
// reports whether the root answer already folded to a constant (in which
// case deeper fragments need not be evaluated at all).
func SolvePartial(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (ans bool, work int64, resolved bool, err error) {
	a := getArena()
	defer putArena(a)
	sc := getSolveScratch()
	defer putSolveScratch(sc)
	return solveArenaEnv(st, a, importTriplets(a, triplets, sc.memo), prog, false, sc.env)
}

// importTriplets interns the pointer triplets into the arena through the
// caller's (empty) memo map.
func importTriplets(a *boolexpr.Arena, triplets map[xmltree.FragmentID]Triplet, memo map[*boolexpr.Formula]boolexpr.NodeID) map[xmltree.FragmentID]ArenaTriplet {
	// One sizing pass so everything downstream is allocated exactly once:
	// the arena's node/kid/memo storage (Reserve) and a single id slab that
	// every per-fragment vector is carved from.
	var entries, nodes int
	for _, t := range triplets {
		entries += len(t.V) + len(t.DV)
		for _, f := range t.V {
			nodes += f.Size()
		}
		for _, f := range t.DV {
			nodes += f.Size()
		}
	}
	a.Reserve(nodes)
	slab := make([]boolexpr.NodeID, 0, entries)
	out := make(map[xmltree.FragmentID]ArenaTriplet, len(triplets))
	conv := func(fs []*boolexpr.Formula) []boolexpr.NodeID {
		base := len(slab)
		for _, f := range fs {
			slab = append(slab, a.Import(f, memo))
		}
		return slab[base:len(slab):len(slab)]
	}
	for id, t := range triplets {
		// CV is never consumed by evalST (a parent reads only V and DV of a
		// sub-fragment), so it is not interned here.
		out[id] = ArenaTriplet{V: conv(t.V), DV: conv(t.DV)}
	}
	return out
}

// solveArenaEnv is the evalST core; env must arrive empty (it is the
// substitution environment, filled fragment by fragment).
func solveArenaEnv(st *frag.SourceTree, a *boolexpr.Arena, triplets map[xmltree.FragmentID]ArenaTriplet, prog *xpath.Program, needAll bool, env map[boolexpr.Var]boolexpr.NodeID) (bool, int64, bool, error) {
	n := len(prog.Subs)
	root := st.Root()
	lookup := func(v boolexpr.Var) (boolexpr.NodeID, bool) {
		f, ok := env[v]
		return f, ok
	}
	var work int64
	var rootV []boolexpr.NodeID

	topo := st.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- { // children before parents
		id := topo[i]
		t, ok := triplets[id]
		if !ok {
			if needAll {
				return false, work, false, fmt.Errorf("eval: missing triplet for fragment %d", id)
			}
			continue
		}
		if len(t.V) != n || len(t.DV) != n {
			return false, work, false, fmt.Errorf("eval: fragment %d triplet has wrong arity", id)
		}
		// One memo generation per fragment: its 2n entries share one
		// environment (their variables all predate this fragment), so a
		// subformula shared across entries is substituted exactly once.
		// Resolved V entries are only materialized for the root fragment —
		// every other fragment's values are consumed through env alone.
		a.NewGen()
		var resolvedV []boolexpr.NodeID
		if id == root {
			resolvedV = make([]boolexpr.NodeID, n)
		}
		for _, vec := range []struct {
			kind boolexpr.VecKind
			fs   []boolexpr.NodeID
		}{
			{boolexpr.VecV, t.V},
			{boolexpr.VecDV, t.DV},
		} {
			for q, f := range vec.fs {
				work += int64(a.Size(f))
				g := a.Subst(f, lookup)
				env[boolexpr.Var{Frag: int32(id), Vec: vec.kind, Q: int32(q)}] = g
				if vec.kind == boolexpr.VecV && resolvedV != nil {
					resolvedV[q] = g
				}
			}
		}
		if id == root {
			rootV = resolvedV
		}
	}
	if rootV == nil {
		return false, work, false, fmt.Errorf("eval: missing triplet for root fragment %d", root)
	}
	ansF := rootV[prog.Root()]
	if v, ok := a.ConstValue(ansF); ok {
		return v, work, true, nil
	}
	return false, work, false, nil
}

// SolveMulti solves the equation system once and reads off the values of
// several entries at the root fragment — the third phase of batch
// evaluation, where one shared QList answers many queries.
func SolveMulti(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program, roots []int32) ([]bool, int64, error) {
	vecs, work, err := SolveAll(st, triplets, prog)
	if err != nil {
		return nil, work, err
	}
	rootVec, ok := vecs[st.Root()]
	if !ok {
		return nil, work, fmt.Errorf("eval: missing root fragment %d", st.Root())
	}
	out := make([]bool, len(roots))
	for i, idx := range roots {
		if idx < 0 || int(idx) >= len(rootVec.V) {
			return nil, work, fmt.Errorf("eval: root index %d out of range", idx)
		}
		out[i] = rootVec.V[idx]
	}
	return out, work, nil
}

// SolveAll solves the equation system like Solve but returns the resolved
// constant V/DV vectors of EVERY fragment — the values pass 2 of
// SelectParBoX distributes so that guards at virtual nodes become plain
// booleans.
func SolveAll(st *frag.SourceTree, triplets map[xmltree.FragmentID]Triplet, prog *xpath.Program) (map[xmltree.FragmentID]BoolVecs, int64, error) {
	n := len(prog.Subs)
	a := getArena()
	defer putArena(a)
	sc := getSolveScratch()
	defer putSolveScratch(sc)
	ats := importTriplets(a, triplets, sc.memo)
	env := sc.env
	lookup := func(v boolexpr.Var) (boolexpr.NodeID, bool) {
		f, ok := env[v]
		return f, ok
	}
	out := make(map[xmltree.FragmentID]BoolVecs, len(ats))
	var work int64
	topo := st.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- {
		id := topo[i]
		t, ok := ats[id]
		if !ok {
			return nil, work, fmt.Errorf("eval: missing triplet for fragment %d", id)
		}
		if len(t.V) != n || len(t.DV) != n {
			return nil, work, fmt.Errorf("eval: fragment %d triplet has wrong arity", id)
		}
		a.NewGen()
		bv := BoolVecs{V: make([]bool, n), DV: make([]bool, n)}
		for q := 0; q < n; q++ {
			work += int64(a.Size(t.V[q]) + a.Size(t.DV[q]))
			rv := a.Subst(t.V[q], lookup)
			rd := a.Subst(t.DV[q], lookup)
			cv, okv := a.ConstValue(rv)
			cd, okd := a.ConstValue(rd)
			if !okv || !okd {
				return nil, work, fmt.Errorf("eval: fragment %d: %w", id, ErrUnresolved)
			}
			bv.V[q], bv.DV[q] = cv, cd
			env[boolexpr.Var{Frag: int32(id), Vec: boolexpr.VecV, Q: int32(q)}] = rv
			env[boolexpr.Var{Frag: int32(id), Vec: boolexpr.VecDV, Q: int32(q)}] = rd
		}
		out[id] = bv
	}
	return out, work, nil
}

// ResolveTriplet substitutes the fully resolved triplets of a fragment's
// sub-fragments into its own triplet, producing a variable-free triplet.
// This is the per-site unification step of Procedure evalDistrST
// (FullDistParBoX): "no variables appear in the resulting triplet".
func ResolveTriplet(id xmltree.FragmentID, own Triplet, subs map[xmltree.FragmentID]Triplet, prog *xpath.Program) (Triplet, int64, error) {
	n := len(prog.Subs)
	a := getArena()
	defer putArena(a)
	sc := getSolveScratch()
	defer putSolveScratch(sc)
	memo, env := sc.memo, sc.env
	for sub, t := range subs {
		if len(t.V) != n || len(t.DV) != n {
			return Triplet{}, 0, fmt.Errorf("eval: sub-fragment %d triplet has wrong arity", sub)
		}
		for q := 0; q < n; q++ {
			env[boolexpr.Var{Frag: int32(sub), Vec: boolexpr.VecV, Q: int32(q)}] = a.Import(t.V[q], memo)
			env[boolexpr.Var{Frag: int32(sub), Vec: boolexpr.VecDV, Q: int32(q)}] = a.Import(t.DV[q], memo)
			if q < len(t.CV) {
				env[boolexpr.Var{Frag: int32(sub), Vec: boolexpr.VecCV, Q: int32(q)}] = a.Import(t.CV[q], memo)
			}
		}
	}
	lookup := func(v boolexpr.Var) (boolexpr.NodeID, bool) {
		f, ok := env[v]
		return f, ok
	}
	var work int64
	a.NewGen()
	out := ArenaTriplet{
		V:  make([]boolexpr.NodeID, n),
		CV: make([]boolexpr.NodeID, n),
		DV: make([]boolexpr.NodeID, n),
	}
	for q := 0; q < n; q++ {
		work += int64(own.V[q].Size() + own.CV[q].Size() + own.DV[q].Size())
		out.V[q] = a.Subst(a.Import(own.V[q], memo), lookup)
		out.CV[q] = a.Subst(a.Import(own.CV[q], memo), lookup)
		out.DV[q] = a.Subst(a.Import(own.DV[q], memo), lookup)
	}
	for q := 0; q < n; q++ {
		for _, f := range []boolexpr.NodeID{out.V[q], out.CV[q], out.DV[q]} {
			if !a.IsConst(f) {
				return Triplet{}, work, fmt.Errorf("eval: fragment %d: %w: %v", id, ErrUnresolved, a.String(f))
			}
		}
	}
	return out.Export(a), work, nil
}

// Package eval implements the two computational procedures at the heart of
// ParBoX (Fig. 3b of the paper):
//
//   - BottomUp — Procedure bottomUp: a single bottom-up traversal of one
//     fragment that computes, for every subquery of the QList, a Boolean
//     formula over the variables introduced at the fragment's virtual
//     nodes. The result is the triplet (V, CV, DV) for the fragment root.
//   - Solve / SolvePartial — Procedure evalST: a bottom-up pass over the
//     source tree that unifies the variables of each fragment's triplet
//     with the computed triplets of its sub-fragments, solving the linear
//     system of Boolean equations.
//
// The package also provides the optimal centralized evaluator (the
// paper's [10, 18] baseline): BottomUp over an unfragmented tree, whose
// vectors contain no variables.
package eval

import (
	"errors"
	"fmt"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Triplet is the partial answer of one fragment: the vectors of subquery
// values at the fragment root (V), the disjunction over its children (CV)
// and over its descendants-or-self (DV). Entries are Boolean formulas over
// the variables of the fragment's virtual nodes; on a fragment without
// virtual nodes every entry is constant.
type Triplet struct {
	V, CV, DV []*boolexpr.Formula
}

// Equal reports entry-wise structural equality; the incremental
// maintenance algorithm compares a recomputed triplet against the cached
// one to decide whether the view can change at all.
func (t Triplet) Equal(u Triplet) bool {
	eq := func(a, b []*boolexpr.Formula) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	return eq(t.V, u.V) && eq(t.CV, u.CV) && eq(t.DV, u.DV)
}

// Size returns the total formula size of the triplet, the unit of the
// paper's O(|q|·card(F_j)) communication bound.
func (t Triplet) Size() int {
	n := 0
	for _, vec := range [][]*boolexpr.Formula{t.V, t.CV, t.DV} {
		for _, f := range vec {
			n += f.Size()
		}
	}
	return n
}

// BottomUp is Procedure bottomUp of the paper, run over the fragment rooted
// at root for the compiled QList prog. It returns the fragment's triplet
// and the number of computation steps performed (node × subquery units, the
// paper's total-computation measure).
//
// The traversal is iterative so that arbitrarily deep fragments cannot
// overflow the stack, and — like the paper's formulation — keeps only one
// accumulator pair (CV, DV) per tree level, not per node.
//
// Virtual nodes do not recurse: a virtual child standing for fragment k
// contributes the variables x(k,V,i) to the parent's CV and x(k,DV,i) to
// the parent's DV. (A parent never consumes a child's CV vector, so no CV
// variables are ever created; see DESIGN.md.)
func BottomUp(root *xmltree.Node, prog *xpath.Program) (Triplet, int64, error) {
	if root == nil {
		return Triplet{}, 0, errors.New("eval: nil fragment root")
	}
	if root.Virtual {
		return Triplet{}, 0, errors.New("eval: fragment root is a virtual node")
	}
	n := len(prog.Subs)
	var steps int64

	type frame struct {
		node   *xmltree.Node
		next   int // next child index to process
		cv, dv []*boolexpr.Formula
	}
	// Popped frames' vectors are recycled through a free list: the
	// traversal allocates O(depth) vectors instead of O(|F_j|).
	var pool [][]*boolexpr.Formula
	newVec := func() []*boolexpr.Formula {
		if len(pool) > 0 {
			v := pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			for i := range v {
				v[i] = boolexpr.False()
			}
			return v
		}
		v := make([]*boolexpr.Formula, n)
		for i := range v {
			v[i] = boolexpr.False()
		}
		return v
	}
	stack := []*frame{{node: root, cv: newVec(), dv: newVec()}}
	var result Triplet

	for len(stack) > 0 {
		f := stack[len(stack)-1]
		// Fold in virtual children directly; descend into real ones.
		descended := false
		for f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			f.next++
			if c.Virtual {
				steps += int64(n)
				for i := 0; i < n; i++ {
					vVar := boolexpr.NewVar(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecV, Q: int32(i)})
					dVar := boolexpr.NewVar(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecDV, Q: int32(i)})
					f.cv[i] = boolexpr.Or(f.cv[i], vVar)
					f.dv[i] = boolexpr.Or(f.dv[i], dVar)
				}
				continue
			}
			stack = append(stack, &frame{node: c, cv: newVec(), dv: newVec()})
			descended = true
			break
		}
		if descended {
			continue
		}
		// All children folded: evaluate the nine cases at this node.
		steps += int64(n)
		v := newVec()
		evalCasesInto(v, f.node, prog, f.cv, f.dv)
		stack = stack[:len(stack)-1]
		if len(stack) == 0 {
			result = Triplet{V: v, CV: f.cv, DV: f.dv}
			break
		}
		p := stack[len(stack)-1]
		for i := 0; i < n; i++ {
			p.cv[i] = boolexpr.Or(p.cv[i], v[i])    // line 4 of bottomUp
			p.dv[i] = boolexpr.Or(p.dv[i], f.dv[i]) // line 5 of bottomUp
		}
		// The child's vectors only carried formula POINTERS upward; the
		// slices themselves are free for reuse.
		pool = append(pool, v, f.cv, f.dv)
	}
	return result, steps, nil
}

// evalCases computes the value vector V_v at node v (lines 6-17 of
// Procedure bottomUp), updating dv to descendant-or-self as it goes
// (line 17). The write to dv[i] must happen inside the loop: a later
// subquery //q_i reads dv[i] and expects it to include V_v (the paper's
// left-to-right processing order).
func evalCases(node *xmltree.Node, prog *xpath.Program, cv, dv []*boolexpr.Formula) []*boolexpr.Formula {
	v := make([]*boolexpr.Formula, len(prog.Subs))
	evalCasesInto(v, node, prog, cv, dv)
	return v
}

// evalCasesInto is evalCases writing into a caller-provided vector (the
// hot path reuses pooled vectors).
func evalCasesInto(v []*boolexpr.Formula, node *xmltree.Node, prog *xpath.Program, cv, dv []*boolexpr.Formula) {
	for i, sq := range prog.Subs {
		var f *boolexpr.Formula
		switch sq.Kind {
		case xpath.KTrue: // (c0) ε
			f = boolexpr.True()
		case xpath.KLabel: // (c1) label() = l
			f = boolexpr.Const(node.Label == sq.Str)
		case xpath.KText: // (c2) text() = str
			f = boolexpr.Const(node.Text == sq.Str)
		case xpath.KChild: // (c3) */q
			f = cv[sq.A]
		case xpath.KFilter: // (c4) ε[q]/q'
			f = v[sq.A]
			if sq.B >= 0 {
				f = boolexpr.CompFm(f, v[sq.B], boolexpr.AND)
			}
		case xpath.KDesc: // (c5) //q
			f = dv[sq.A]
		case xpath.KOr: // (c6)
			f = boolexpr.CompFm(v[sq.A], v[sq.B], boolexpr.OR)
		case xpath.KAnd: // (c7)
			f = boolexpr.CompFm(v[sq.A], v[sq.B], boolexpr.AND)
		case xpath.KNot: // (c8)
			f = boolexpr.CompFm(v[sq.A], nil, boolexpr.NEG)
		default:
			panic(fmt.Sprintf("eval: unknown subquery kind %v", sq.Kind))
		}
		v[i] = f
		dv[i] = boolexpr.Or(f, dv[i]) // line 17
	}
}

// Evaluate is the optimal centralized algorithm: one traversal of a
// complete (virtual-node-free) tree. It errors if the tree still contains
// virtual nodes, because then the answer is a residual formula, not a
// truth value.
func Evaluate(root *xmltree.Node, prog *xpath.Program) (bool, int64, error) {
	t, steps, err := BottomUp(root, prog)
	if err != nil {
		return false, steps, err
	}
	ans, ok := t.V[prog.Root()].ConstValue()
	if !ok {
		return false, steps, fmt.Errorf("eval: residual answer %v (tree has virtual nodes)", t.V[prog.Root()])
	}
	return ans, steps, nil
}

// EvaluateAll runs BottomUp over every fragment of a forest, as the
// participating sites do in stage 2 of ParBoX (Procedure evalQual), and
// returns the triplets by fragment. Exposed for tests and the view layer;
// the distributed algorithms call BottomUp per site instead.
func EvaluateAll(f *frag.Forest, prog *xpath.Program) (map[xmltree.FragmentID]Triplet, int64, error) {
	out := make(map[xmltree.FragmentID]Triplet, f.Count())
	var total int64
	for _, id := range f.IDs() {
		fr, _ := f.Fragment(id)
		t, steps, err := BottomUp(fr.Root, prog)
		total += steps
		if err != nil {
			return nil, total, fmt.Errorf("fragment %d: %w", id, err)
		}
		out[id] = t
	}
	return out, total, nil
}

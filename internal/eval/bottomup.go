// Package eval implements the two computational procedures at the heart of
// ParBoX (Fig. 3b of the paper):
//
//   - BottomUp — Procedure bottomUp: a single bottom-up traversal of one
//     fragment that computes, for every subquery of the QList, a Boolean
//     formula over the variables introduced at the fragment's virtual
//     nodes. The result is the triplet (V, CV, DV) for the fragment root.
//   - Solve / SolvePartial — Procedure evalST: a bottom-up pass over the
//     source tree that unifies the variables of each fragment's triplet
//     with the computed triplets of its sub-fragments, solving the linear
//     system of Boolean equations.
//
// The evaluator runs on two representations with an automatic switch (see
// DESIGN.md, "Constant plane / variable plane"):
//
//   - The CONSTANT PLANE: while no virtual-node variable is in scope —
//     which is every node of a virtual-free subtree, i.e. the entire
//     fragment in the dominant all-constant case — the per-node vectors
//     (V, CV, DV) are packed uint64 bitsets and the formula connectives
//     are single bitwise instructions. No formula node is ever built.
//   - The VARIABLE PLANE: the first virtual child switches the enclosing
//     frames to int32 ids into a hash-consed formula arena
//     (boolexpr.Arena), where structurally equal subformulas share one
//     interned node, equality is an integer compare, and substitution
//     memoizes per (node, generation).
//
// The package also provides the optimal centralized evaluator (the
// paper's [10, 18] baseline): BottomUp over an unfragmented tree, which
// never leaves the constant plane.
package eval

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/boolexpr"
	"repro/internal/frag"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Triplet is the partial answer of one fragment: the vectors of subquery
// values at the fragment root (V), the disjunction over its children (CV)
// and over its descendants-or-self (DV). Entries are Boolean formulas over
// the variables of the fragment's virtual nodes; on a fragment without
// virtual nodes every entry is constant.
type Triplet struct {
	V, CV, DV []*boolexpr.Formula
}

// Equal reports entry-wise structural equality; the incremental
// maintenance algorithm compares a recomputed triplet against the cached
// one to decide whether the view can change at all.
func (t Triplet) Equal(u Triplet) bool {
	eq := func(a, b []*boolexpr.Formula) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				return false
			}
		}
		return true
	}
	return eq(t.V, u.V) && eq(t.CV, u.CV) && eq(t.DV, u.DV)
}

// Size returns the total formula size of the triplet, the unit of the
// paper's O(|q|·card(F_j)) communication bound.
func (t Triplet) Size() int {
	n := 0
	for _, vec := range [][]*boolexpr.Formula{t.V, t.CV, t.DV} {
		for _, f := range vec {
			n += f.Size()
		}
	}
	return n
}

// ArenaTriplet is a triplet whose entries are ids into a shared
// boolexpr.Arena. Within one arena, hash-consing makes structural equality
// id equality, so comparing two arena triplets is a few integer compares —
// the O(1) Equal the view-maintenance layer leans on.
type ArenaTriplet struct {
	V, CV, DV []boolexpr.NodeID
}

// Equal reports entry-wise equality of two triplets of the SAME arena.
func (t ArenaTriplet) Equal(u ArenaTriplet) bool {
	eq := func(a, b []boolexpr.NodeID) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eq(t.V, u.V) && eq(t.CV, u.CV) && eq(t.DV, u.DV)
}

// Export converts the triplet to the pointer representation, preserving
// sharing across all three vectors.
func (t ArenaTriplet) Export(a *boolexpr.Arena) Triplet {
	memo := make(map[boolexpr.NodeID]*boolexpr.Formula)
	conv := func(ids []boolexpr.NodeID) []*boolexpr.Formula {
		fs := make([]*boolexpr.Formula, len(ids))
		for i, id := range ids {
			fs[i] = a.Export(id, memo)
		}
		return fs
	}
	return Triplet{V: conv(t.V), CV: conv(t.CV), DV: conv(t.DV)}
}

// ImportTriplet interns a pointer triplet into the arena.
func ImportTriplet(a *boolexpr.Arena, t Triplet) ArenaTriplet {
	memo := make(map[*boolexpr.Formula]boolexpr.NodeID)
	conv := func(fs []*boolexpr.Formula) []boolexpr.NodeID {
		ids := make([]boolexpr.NodeID, len(fs))
		for i, f := range fs {
			ids[i] = a.Import(f, memo)
		}
		return ids
	}
	return ArenaTriplet{V: conv(t.V), CV: conv(t.CV), DV: conv(t.DV)}
}

// arenaPool recycles formula arenas across BottomUp/Solve calls: a
// steady-state serving round reuses one arena's node/intern storage instead
// of re-growing it per fragment. Arenas are Reset before going back in.
var arenaPool = sync.Pool{New: func() any { return boolexpr.NewArena() }}

func getArena() *boolexpr.Arena { return arenaPool.Get().(*boolexpr.Arena) }

func putArena(a *boolexpr.Arena) {
	a.Reset()
	arenaPool.Put(a)
}

// BottomUp is Procedure bottomUp of the paper, run over the fragment rooted
// at root for the compiled QList prog. It returns the fragment's triplet
// and the number of computation steps performed (node × subquery units, the
// paper's total-computation measure).
func BottomUp(root *xmltree.Node, prog *xpath.Program) (Triplet, int64, error) {
	a := getArena()
	at, steps, err := BottomUpArena(a, root, prog)
	if err != nil {
		putArena(a)
		return Triplet{}, steps, err
	}
	t := at.Export(a)
	putArena(a)
	return t, steps, nil
}

// BottomUpPerLane is BottomUp evaluated with the scalar per-lane loop
// instead of the fused lane kernel. It is the differential reference for
// the kernel (as LegacyBottomUp is for the bitset representation): the two
// must agree entry-wise on every (tree, program) pair.
func BottomUpPerLane(root *xmltree.Node, prog *xpath.Program) (Triplet, int64, error) {
	a := getArena()
	at, steps, err := BottomUpArenaPerLane(a, root, prog)
	if err != nil {
		putArena(a)
		return Triplet{}, steps, err
	}
	t := at.Export(a)
	putArena(a)
	return t, steps, nil
}

// buFrame is one traversal frame. A frame starts on the constant plane
// (cvb/dvb bitsets); the first virtual child — or a symbolic real child —
// materializes it onto the variable plane (cv/dv arena-id vectors) and the
// bitsets are recycled. cv being non-nil marks the plane.
type buFrame struct {
	node     *xmltree.Node
	next     int
	cvb, dvb boolexpr.BitVec
	cv, dv   []boolexpr.NodeID
}

// buFrame1 is the single-word traversal frame: for programs of at most 64
// lanes — every scheduler round under the default lane budget — the
// constant-plane CV/DV accumulators are plain uint64 words carried in the
// frame itself. No bitset is allocated, recycled, or even touched until a
// virtual child forces the variable plane (cv non-nil marks the switch).
type buFrame1 struct {
	node   *xmltree.Node
	next   int
	cw, dw uint64
	cv, dv []boolexpr.NodeID
}

// buScratch is the pooled traversal workspace: bitset and id-vector free
// lists plus the frame stacks, recycled across BottomUp calls so a
// steady-state serving round re-walks fragments with zero traversal
// allocations. Vectors of a different shape than the current program are
// dropped on reuse (cap check), never resized in place.
type buScratch struct {
	bits   []boolexpr.BitVec
	ids    [][]boolexpr.NodeID
	stack  []buFrame
	stack1 []buFrame1
}

var buScratchPool = sync.Pool{New: func() any { return new(buScratch) }}

// BottomUpArena is BottomUp producing arena ids in a caller-provided arena,
// for callers that keep working symbolically (Solve, the view layer) and
// don't want the pointer export.
//
// The traversal is iterative so that arbitrarily deep fragments cannot
// overflow the stack, and — like the paper's formulation — keeps only one
// accumulator pair (CV, DV) per tree level, not per node. Frames live in a
// value-slice stack and popped frames' vectors are recycled through free
// lists, so the whole traversal allocates O(depth) small objects instead of
// O(|F_j|).
//
// Constant-plane nodes evaluate through the program's fused lane kernel
// (xpath.LaneKernel): the whole QList in a few masked word ops per node
// instead of a per-lane loop. Frames forced onto the variable plane fall
// back to the per-lane arena body, which is the only representation that
// can hold residual formulas.
//
// Virtual nodes do not recurse: a virtual child standing for fragment k
// contributes the variables x(k,V,i) to the parent's CV and x(k,DV,i) to
// the parent's DV. (A parent never consumes a child's CV vector, so no CV
// variables are ever created; see DESIGN.md.)
func BottomUpArena(a *boolexpr.Arena, root *xmltree.Node, prog *xpath.Program) (ArenaTriplet, int64, error) {
	return bottomUpArena(a, root, prog, prog.Kernel())
}

// BottomUpArenaPerLane is BottomUpArena with the fused kernel disabled —
// the constant plane runs the scalar per-lane loop. Differential reference
// for the kernel path.
func BottomUpArenaPerLane(a *boolexpr.Arena, root *xmltree.Node, prog *xpath.Program) (ArenaTriplet, int64, error) {
	return bottomUpArena(a, root, prog, nil)
}

func bottomUpArena(a *boolexpr.Arena, root *xmltree.Node, prog *xpath.Program, kern *xpath.LaneKernel) (ArenaTriplet, int64, error) {
	if root == nil {
		return ArenaTriplet{}, 0, errors.New("eval: nil fragment root")
	}
	if root.Virtual {
		return ArenaTriplet{}, 0, errors.New("eval: fragment root is a virtual node")
	}
	n := len(prog.Subs)
	words := (n + 63) / 64
	var steps int64

	sc := buScratchPool.Get().(*buScratch)
	if kern != nil && kern.Words() == 1 {
		result, steps := bottomUpArena1(a, root, prog, kern, sc)
		buScratchPool.Put(sc)
		return result, steps, nil
	}
	newBits := func() boolexpr.BitVec {
		for {
			k := len(sc.bits)
			if k == 0 {
				return boolexpr.NewBitVec(n)
			}
			b := sc.bits[k-1]
			sc.bits = sc.bits[:k-1]
			if cap(b) >= words {
				b = b[:words]
				b.Clear()
				return b
			}
		}
	}
	newIDs := func() []boolexpr.NodeID {
		for {
			k := len(sc.ids)
			if k == 0 {
				return make([]boolexpr.NodeID, n)
			}
			v := sc.ids[k-1]
			sc.ids = sc.ids[:k-1]
			if cap(v) >= n {
				return v[:n]
			}
		}
	}
	// materialize moves a frame from the constant to the variable plane:
	// every decided bit becomes the corresponding constant id.
	materialize := func(f *buFrame) {
		f.cv, f.dv = newIDs(), newIDs()
		for i := int32(0); i < int32(n); i++ {
			f.cv[i] = a.Const(f.cvb.Get(i))
			f.dv[i] = a.Const(f.dvb.Get(i))
		}
		sc.bits = append(sc.bits, f.cvb, f.dvb)
		f.cvb, f.dvb = nil, nil
	}

	stack := append(sc.stack[:0], buFrame{node: root, cvb: newBits(), dvb: newBits()})
	var result ArenaTriplet

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		// Fold in virtual children directly; descend into real ones.
		descended := false
		for f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			f.next++
			if c.Virtual {
				steps += int64(n)
				if f.cv == nil {
					materialize(f)
				}
				for i := 0; i < n; i++ {
					vVar := a.Var(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecV, Q: int32(i)})
					dVar := a.Var(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecDV, Q: int32(i)})
					f.cv[i] = a.Or2(f.cv[i], vVar)
					f.dv[i] = a.Or2(f.dv[i], dVar)
				}
				continue
			}
			if kern != nil && len(c.Children) == 0 {
				// Leaf: CV = DV = 0, so the kernel's leaf plan yields V
				// directly and the outgoing DV is exactly V — no frame, no
				// CV/DV vectors, one scratch word vector.
				steps += int64(n)
				vb := newBits()
				kern.EvalLeaf(vb, c.Label, c.Text)
				if f.cv == nil {
					f.cvb.Or(vb)
					f.dvb.Or(vb)
				} else {
					orBitsInto(a, f.cv, vb)
					orBitsInto(a, f.dv, vb)
				}
				sc.bits = append(sc.bits, vb)
				continue
			}
			stack = append(stack, buFrame{node: c, cvb: newBits(), dvb: newBits()})
			descended = true
			break
		}
		if descended {
			continue
		}
		// All children folded: evaluate the nine cases at this node, on
		// whichever plane the frame ended up on.
		steps += int64(n)
		child := *f // frame fields survive the pop
		stack = stack[:len(stack)-1]
		if child.cv == nil {
			vb := newBits()
			if kern != nil {
				kern.EvalConst(vb, child.cvb, child.dvb, child.node.Label, child.node.Text)
			} else {
				evalCasesBits(vb, child.node, prog, child.cvb, child.dvb)
			}
			if len(stack) == 0 {
				result = constArenaTriplet(a, n, vb, child.cvb, child.dvb)
				sc.bits = append(sc.bits, vb, child.cvb, child.dvb)
				break
			}
			p := &stack[len(stack)-1]
			if p.cv == nil {
				p.cvb.Or(vb)        // line 4 of bottomUp, n/64 words at a time
				p.dvb.Or(child.dvb) // line 5
			} else {
				orBitsInto(a, p.cv, vb)
				orBitsInto(a, p.dv, child.dvb)
			}
			sc.bits = append(sc.bits, vb, child.cvb, child.dvb)
		} else {
			v := newIDs()
			evalCasesArena(a, v, child.node, prog, child.cv, child.dv)
			if len(stack) == 0 {
				// The result vectors escape to the caller; they cannot
				// return to the free lists.
				result = ArenaTriplet{V: v, CV: child.cv, DV: child.dv}
				break
			}
			p := &stack[len(stack)-1]
			if p.cv == nil {
				materialize(p)
			}
			for i := 0; i < n; i++ {
				p.cv[i] = a.Or2(p.cv[i], v[i])        // line 4 of bottomUp
				p.dv[i] = a.Or2(p.dv[i], child.dv[i]) // line 5
			}
			// The child's vectors only carried ids upward; the slices
			// themselves are free for reuse.
			sc.ids = append(sc.ids, v, child.cv, child.dv)
		}
	}
	// Clear frame contents before pooling the stack so popped frames don't
	// pin tree nodes (and the early-break leftovers don't leak vectors into
	// the next call with a different shape — the cap checks handle shape,
	// the zeroing handles liveness).
	stack = stack[:cap(stack)]
	for i := range stack {
		stack[i] = buFrame{}
	}
	sc.stack = stack[:0]
	buScratchPool.Put(sc)
	return result, steps, nil
}

// bottomUpArena1 is the traversal specialized for single-word kernels: the
// dominant serving shape (≤64 fused lanes). Constant-plane frames carry
// their CV/DV accumulators as two uint64 fields — the entire per-node
// evaluation is kern.EvalConstWord in registers plus two word ORs into the
// parent — and leaves never get a frame at all: a childless real node's V
// is computed from (CV, DV) = (0, 0) and folded straight into the frame on
// top of the stack. The variable plane (virtual children) falls back to
// the same per-lane arena body as the general path.
func bottomUpArena1(a *boolexpr.Arena, root *xmltree.Node, prog *xpath.Program, kern *xpath.LaneKernel, sc *buScratch) (ArenaTriplet, int64) {
	n := len(prog.Subs)
	var steps int64
	newIDs := func() []boolexpr.NodeID {
		for {
			k := len(sc.ids)
			if k == 0 {
				return make([]boolexpr.NodeID, n)
			}
			v := sc.ids[k-1]
			sc.ids = sc.ids[:k-1]
			if cap(v) >= n {
				return v[:n]
			}
		}
	}
	materialize := func(f *buFrame1) {
		f.cv, f.dv = newIDs(), newIDs()
		for i := 0; i < n; i++ {
			f.cv[i] = a.Const(f.cw>>uint(i)&1 == 1)
			f.dv[i] = a.Const(f.dw>>uint(i)&1 == 1)
		}
	}

	stack := append(sc.stack1[:0], buFrame1{node: root})
	var result ArenaTriplet

	// Leaf-plan memo: EvalLeafPlan is a pure function of the base self-test
	// word, and a document's leaves collapse to a handful of distinct bases
	// (most match no test at all). Direct-mapped, 4 slots, multiplicative
	// hash; a collision just recomputes.
	var (
		leafKey [4]uint64
		leafVal [4]uint64
		leafSet [4]bool
	)

	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		descended := false
		for f.next < len(f.node.Children) {
			c := f.node.Children[f.next]
			f.next++
			if c.Virtual {
				steps += int64(n)
				if f.cv == nil {
					materialize(f)
				}
				for i := 0; i < n; i++ {
					vVar := a.Var(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecV, Q: int32(i)})
					dVar := a.Var(boolexpr.Var{Frag: int32(c.Frag), Vec: boolexpr.VecDV, Q: int32(i)})
					f.cv[i] = a.Or2(f.cv[i], vVar)
					f.dv[i] = a.Or2(f.dv[i], dVar)
				}
				continue
			}
			if len(c.Children) == 0 {
				// Leaf: CV = DV = 0, and line 17 makes the leaf's outgoing
				// DV exactly its V.
				steps += int64(n)
				base := kern.LeafBase(c.Label, c.Text)
				s := (base * 0x9e3779b97f4a7c15) >> 62
				var vw uint64
				if leafSet[s] && leafKey[s] == base {
					vw = leafVal[s]
				} else {
					vw = kern.EvalLeafPlan(base)
					leafKey[s], leafVal[s], leafSet[s] = base, vw, true
				}
				if f.cv == nil {
					f.cw |= vw
					f.dw |= vw
				} else {
					orWordInto(f.cv, vw)
					orWordInto(f.dv, vw)
				}
				continue
			}
			stack = append(stack, buFrame1{node: c})
			descended = true
			break
		}
		if descended {
			continue
		}
		steps += int64(n)
		top := len(stack) - 1
		child := &stack[top] // stays valid: nothing appends before it's consumed
		stack = stack[:top]
		if child.cv == nil {
			vw := kern.EvalConstWord(child.cw, child.dw, child.node.Label, child.node.Text)
			dw := child.dw | vw
			if top == 0 {
				result = constArenaTriplet1(a, n, vw, child.cw, dw)
				break
			}
			p := &stack[top-1]
			if p.cv == nil {
				p.cw |= vw // line 4 of bottomUp, the whole vector in one OR
				p.dw |= dw // line 5
			} else {
				orWordInto(p.cv, vw)
				orWordInto(p.dv, dw)
			}
		} else {
			v := newIDs()
			evalCasesArena(a, v, child.node, prog, child.cv, child.dv)
			if top == 0 {
				result = ArenaTriplet{V: v, CV: child.cv, DV: child.dv}
				break
			}
			p := &stack[top-1]
			if p.cv == nil {
				materialize(p)
			}
			for i := 0; i < n; i++ {
				p.cv[i] = a.Or2(p.cv[i], v[i])
				p.dv[i] = a.Or2(p.dv[i], child.dv[i])
			}
			sc.ids = append(sc.ids, v, child.cv, child.dv)
		}
	}
	stack = stack[:cap(stack)]
	for i := range stack {
		stack[i] = buFrame1{}
	}
	sc.stack1 = stack[:0]
	return result, steps
}

// orWordInto folds a single-word constant-plane vector into a
// variable-plane id vector: each set bit forces its entry to true.
func orWordInto(dst []boolexpr.NodeID, w uint64) {
	for ; w != 0; w &= w - 1 {
		dst[bits.TrailingZeros64(w)] = boolexpr.IDTrue
	}
}

// constArenaTriplet1 is constArenaTriplet from single-word vectors.
func constArenaTriplet1(a *boolexpr.Arena, n int, vw, cw, dw uint64) ArenaTriplet {
	t := ArenaTriplet{
		V:  make([]boolexpr.NodeID, n),
		CV: make([]boolexpr.NodeID, n),
		DV: make([]boolexpr.NodeID, n),
	}
	for i := 0; i < n; i++ {
		t.V[i] = a.Const(vw>>uint(i)&1 == 1)
		t.CV[i] = a.Const(cw>>uint(i)&1 == 1)
		t.DV[i] = a.Const(dw>>uint(i)&1 == 1)
	}
	return t
}

// constArenaTriplet converts the root frame's bitsets into an all-constant
// triplet — the result shape of every virtual-free fragment.
func constArenaTriplet(a *boolexpr.Arena, n int, v, cv, dv boolexpr.BitVec) ArenaTriplet {
	t := ArenaTriplet{
		V:  make([]boolexpr.NodeID, n),
		CV: make([]boolexpr.NodeID, n),
		DV: make([]boolexpr.NodeID, n),
	}
	for i := int32(0); i < int32(n); i++ {
		t.V[i] = a.Const(v.Get(i))
		t.CV[i] = a.Const(cv.Get(i))
		t.DV[i] = a.Const(dv.Get(i))
	}
	return t
}

// orBitsInto folds a constant-plane child vector into a variable-plane
// parent vector: a set bit forces the entry to true, a clear bit is the OR
// identity and leaves it unchanged.
func orBitsInto(a *boolexpr.Arena, dst []boolexpr.NodeID, bits boolexpr.BitVec) {
	for i := int32(0); i < int32(len(dst)); i++ {
		if bits.Get(i) {
			dst[i] = boolexpr.IDTrue
		}
	}
}

// evalCasesBits is the constant-plane body of lines 6-17 of Procedure
// bottomUp: every connective is a bit test, every vector write a bit set.
// v must arrive zeroed. The dv write must happen inside the loop: a later
// subquery //q_i reads dv[i] and expects it to include V_v (the paper's
// left-to-right processing order).
func evalCasesBits(v boolexpr.BitVec, node *xmltree.Node, prog *xpath.Program, cv, dv boolexpr.BitVec) {
	for i, sq := range prog.Subs {
		var b bool
		switch sq.Kind {
		case xpath.KTrue: // (c0) ε
			b = true
		case xpath.KLabel: // (c1) label() = l
			b = node.Label == sq.Str
		case xpath.KText: // (c2) text() = str
			b = node.Text == sq.Str
		case xpath.KChild: // (c3) */q
			b = cv.Get(sq.A)
		case xpath.KFilter: // (c4) ε[q]/q'
			b = v.Get(sq.A) && (sq.B < 0 || v.Get(sq.B))
		case xpath.KDesc: // (c5) //q
			b = dv.Get(sq.A)
		case xpath.KOr: // (c6)
			b = v.Get(sq.A) || v.Get(sq.B)
		case xpath.KAnd: // (c7)
			b = v.Get(sq.A) && v.Get(sq.B)
		case xpath.KNot: // (c8)
			b = !v.Get(sq.A)
		default:
			panic(fmt.Sprintf("eval: unknown subquery kind %v", sq.Kind))
		}
		if b {
			v.Set(int32(i))
			dv.Set(int32(i)) // line 17
		}
	}
}

// evalCasesArena is the variable-plane body of lines 6-17, over interned
// arena ids.
func evalCasesArena(a *boolexpr.Arena, v []boolexpr.NodeID, node *xmltree.Node, prog *xpath.Program, cv, dv []boolexpr.NodeID) {
	for i, sq := range prog.Subs {
		var f boolexpr.NodeID
		switch sq.Kind {
		case xpath.KTrue: // (c0) ε
			f = boolexpr.IDTrue
		case xpath.KLabel: // (c1) label() = l
			f = a.Const(node.Label == sq.Str)
		case xpath.KText: // (c2) text() = str
			f = a.Const(node.Text == sq.Str)
		case xpath.KChild: // (c3) */q
			f = cv[sq.A]
		case xpath.KFilter: // (c4) ε[q]/q'
			f = v[sq.A]
			if sq.B >= 0 {
				f = a.And2(f, v[sq.B])
			}
		case xpath.KDesc: // (c5) //q
			f = dv[sq.A]
		case xpath.KOr: // (c6)
			f = a.Or2(v[sq.A], v[sq.B])
		case xpath.KAnd: // (c7)
			f = a.And2(v[sq.A], v[sq.B])
		case xpath.KNot: // (c8)
			f = a.Not(v[sq.A])
		default:
			panic(fmt.Sprintf("eval: unknown subquery kind %v", sq.Kind))
		}
		v[i] = f
		dv[i] = a.Or2(f, dv[i]) // line 17
	}
}

// Evaluate is the optimal centralized algorithm: one traversal of a
// complete (virtual-node-free) tree. It errors if the tree still contains
// virtual nodes, because then the answer is a residual formula, not a
// truth value. Over a complete tree the evaluation never leaves the
// constant plane: the whole run is bitwise arithmetic.
func Evaluate(root *xmltree.Node, prog *xpath.Program) (bool, int64, error) {
	a := getArena()
	t, steps, err := BottomUpArena(a, root, prog)
	if err != nil {
		putArena(a)
		return false, steps, err
	}
	ans, ok := a.ConstValue(t.V[prog.Root()])
	if !ok {
		err := fmt.Errorf("eval: residual answer %v (tree has virtual nodes)", a.String(t.V[prog.Root()]))
		putArena(a)
		return false, steps, err
	}
	putArena(a)
	return ans, steps, nil
}

// EvaluateAll runs BottomUp over every fragment of a forest, as the
// participating sites do in stage 2 of ParBoX (Procedure evalQual), and
// returns the triplets by fragment. Exposed for tests and the view layer;
// the distributed algorithms call BottomUp per site instead.
func EvaluateAll(f *frag.Forest, prog *xpath.Program) (map[xmltree.FragmentID]Triplet, int64, error) {
	out := make(map[xmltree.FragmentID]Triplet, f.Count())
	var total int64
	for _, id := range f.IDs() {
		fr, _ := f.Fragment(id)
		t, steps, err := BottomUp(fr.Root, prog)
		total += steps
		if err != nil {
			return nil, total, fmt.Errorf("fragment %d: %w", id, err)
		}
		out[id] = t
	}
	return out, total, nil
}

package xpath

import "repro/internal/xmltree"

// EvalRaw evaluates a raw XBL expression at node v by direct, set-based
// interpretation of the AST. It is deliberately naive (it materializes the
// node sets paths reach) and serves as the reference oracle for the
// differential property tests: the compiled Program evaluated by Procedure
// bottomUp must agree with EvalRaw on every tree and query.
//
// EvalRaw must only be used on complete trees: virtual nodes have no
// evaluable content, and the function ignores them entirely (they match no
// test and have no children).
func EvalRaw(e Expr, v *xmltree.Node) bool {
	switch e := e.(type) {
	case *Path:
		return len(evalPath(e, v)) > 0
	case *TextCmp:
		if e.Path == nil {
			return !v.Virtual && v.Text == e.Str
		}
		for _, u := range evalPath(e.Path, v) {
			if u.Text == e.Str {
				return true
			}
		}
		return false
	case *LabelCmp:
		return !v.Virtual && v.Label == e.Label
	case *Not:
		return !EvalRaw(e.Q, v)
	case *And:
		return EvalRaw(e.Q1, v) && EvalRaw(e.Q2, v)
	case *Or:
		return EvalRaw(e.Q1, v) || EvalRaw(e.Q2, v)
	default:
		panic("xpath: unknown expression type in EvalRaw")
	}
}

// nodeSet is an ordered set of nodes (document order is irrelevant for
// Boolean results; the set property only prevents duplicate work).
type nodeSet struct {
	nodes []*xmltree.Node
	seen  map[*xmltree.Node]bool
}

func newNodeSet() *nodeSet {
	return &nodeSet{seen: make(map[*xmltree.Node]bool)}
}

func (s *nodeSet) add(n *xmltree.Node) {
	if n.Virtual || s.seen[n] {
		return
	}
	s.seen[n] = true
	s.nodes = append(s.nodes, n)
}

// evalPath mirrors the normalization rules of Compile, so both definitions
// of the semantics coincide by construction of the tests, not by sharing
// code:
//
//   - a step moves to children, except that a label step directly after //
//     filters the descendant-or-self set in place (Example 2.1), and a
//     leading "/" makes the first step test the context node itself;
//   - qualifiers filter the current set;
//   - // expands to descendant-or-self.
func evalPath(p *Path, v *xmltree.Node) []*xmltree.Node {
	cur := newNodeSet()
	cur.add(v)
	steps := p.Steps
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		switch s.Kind {
		case StepSelf:
			cur = filterSet(cur, func(u *xmltree.Node) bool { return holdAll(s.Quals, u) })
		case StepWildcard:
			if i == 0 && p.Rooted {
				cur = filterSet(cur, func(u *xmltree.Node) bool { return holdAll(s.Quals, u) })
			} else {
				cur = childrenOf(cur, func(u *xmltree.Node) bool { return holdAll(s.Quals, u) })
			}
		case StepLabel:
			pred := func(u *xmltree.Node) bool { return u.Label == s.Label && holdAll(s.Quals, u) }
			if i == 0 && p.Rooted {
				cur = filterSet(cur, pred)
			} else {
				cur = childrenOf(cur, pred)
			}
		case StepDescOrSelf:
			cur = descOrSelf(cur, func(u *xmltree.Node) bool { return holdAll(s.Quals, u) })
			if i+1 < len(steps) && steps[i+1].Kind == StepLabel {
				nxt := steps[i+1]
				cur = filterSet(cur, func(u *xmltree.Node) bool {
					return u.Label == nxt.Label && holdAll(nxt.Quals, u)
				})
				i++
			}
		}
	}
	return cur.nodes
}

func holdAll(quals []Expr, u *xmltree.Node) bool {
	for _, q := range quals {
		if !EvalRaw(q, u) {
			return false
		}
	}
	return true
}

func filterSet(s *nodeSet, pred func(*xmltree.Node) bool) *nodeSet {
	out := newNodeSet()
	for _, n := range s.nodes {
		if pred(n) {
			out.add(n)
		}
	}
	return out
}

func childrenOf(s *nodeSet, pred func(*xmltree.Node) bool) *nodeSet {
	out := newNodeSet()
	for _, n := range s.nodes {
		for _, c := range n.Children {
			if !c.Virtual && pred(c) {
				out.add(c)
			}
		}
	}
	return out
}

func descOrSelf(s *nodeSet, pred func(*xmltree.Node) bool) *nodeSet {
	out := newNodeSet()
	for _, n := range s.nodes {
		n.Walk(func(u *xmltree.Node) {
			if !u.Virtual && pred(u) {
				out.add(u)
			}
		})
	}
	return out
}

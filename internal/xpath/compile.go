package xpath

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
)

// Kind enumerates the nine normal-form subquery shapes of Procedure
// bottomUp (cases c0–c8 in Fig. 3b of the paper).
type Kind uint8

const (
	// KTrue is ε: always true (case c0).
	KTrue Kind = iota
	// KLabel is label() = Str (case c1).
	KLabel
	// KText is text() = Str (case c2).
	KText
	// KChild is */q: some child satisfies subquery A (case c3).
	KChild
	// KFilter is ε[q_A]/q_B: the conjunction of A and the continuation B at
	// the same node (case c4). B may be -1: ε[q_A] with no continuation.
	KFilter
	// KDesc is //q: some descendant-or-self node satisfies A (case c5).
	KDesc
	// KOr is q_A ∨ q_B (case c6).
	KOr
	// KAnd is q_A ∧ q_B (case c7).
	KAnd
	// KNot is ¬q_A (case c8).
	KNot
)

func (k Kind) String() string {
	switch k {
	case KTrue:
		return "eps"
	case KLabel:
		return "label"
	case KText:
		return "text"
	case KChild:
		return "child"
	case KFilter:
		return "filter"
	case KDesc:
		return "desc"
	case KOr:
		return "or"
	case KAnd:
		return "and"
	case KNot:
		return "not"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Subquery is one entry of the QList: a normal-form subquery whose operands
// A and B are indices of earlier entries (or -1 when absent).
type Subquery struct {
	Kind Kind
	A, B int32
	Str  string
}

// Program is the compiled QList(q): subqueries in topological order
// (operands strictly before users). The answer to the whole query at a node
// is the value of the last entry, exactly as in the paper ("the answer to q
// is the value of the last query in QList(q)").
type Program struct {
	Subs []Subquery
	// Source is the surface text the program was compiled from, when known.
	Source string

	// fp caches Fingerprint (0 = not yet computed). Do not mutate Subs
	// after the first Fingerprint call.
	fp atomic.Uint64

	// kern caches the compiled lane kernel (see Kernel). Do not mutate
	// Subs after the first Kernel call.
	kern atomic.Pointer[LaneKernel]
}

// Fingerprint returns a stable 64-bit fingerprint of the program: FNV-1a
// over the QList structure (kinds, operand wiring, payload strings; Source
// is excluded — two spellings compiling to the same QList share a
// fingerprint). Sites key their per-fragment triplet caches by it, so it
// must be identical across processes for the same program — it hashes the
// canonical content, not any in-memory representation. The value is never
// 0; it is computed once and cached.
func (p *Program) Fingerprint() uint64 {
	if fp := p.fp.Load(); fp != 0 {
		return fp
	}
	h := uint64(14695981039346656037) // FNV-1a offset basis
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	mix(uint64(len(p.Subs)))
	for _, s := range p.Subs {
		mix(uint64(s.Kind))
		mix(uint64(uint32(s.A)))
		mix(uint64(uint32(s.B)))
		mix(uint64(len(s.Str)))
		for i := 0; i < len(s.Str); i++ {
			h ^= uint64(s.Str[i])
			h *= 1099511628211
		}
	}
	if h == 0 {
		h = 1
	}
	p.fp.Store(h)
	return h
}

// Root returns the index of the outermost subquery.
func (p *Program) Root() int { return len(p.Subs) - 1 }

// QListSize returns |QList(q)|, the query-size measure of the experiments.
func (p *Program) QListSize() int { return len(p.Subs) }

// String renders the program one subquery per line, for tests and debugging.
func (p *Program) String() string {
	var b strings.Builder
	for i, s := range p.Subs {
		fmt.Fprintf(&b, "q%d: %s", i+1, s.Kind)
		if s.Str != "" || s.Kind == KLabel || s.Kind == KText {
			fmt.Fprintf(&b, " %q", s.Str)
		}
		if s.A >= 0 {
			fmt.Fprintf(&b, " q%d", s.A+1)
		}
		if s.B >= 0 {
			fmt.Fprintf(&b, " q%d", s.B+1)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CompileOptions tune Compile; the zero value is the default behaviour.
type CompileOptions struct {
	// DisableHashCons turns off subquery sharing, reproducing the paper's
	// literal QList construction in which structurally identical
	// subqueries occupy separate entries. The ablation benchmark measures
	// what sharing saves; semantics are unaffected.
	DisableHashCons bool
}

// Compile normalizes a raw XBL expression (Section 2.2's normalize) and
// returns its QList program. The top-level query [q] compiles to the
// wrapper ε[normalize(q)], matching the paper's Example 2.1. Structurally
// identical subqueries share one entry (hash-consing); the paper's O(|q|)
// size bound is preserved.
func Compile(e Expr) *Program { return CompileWithOptions(e, CompileOptions{}) }

// CompileWithOptions is Compile with explicit options.
func CompileWithOptions(e Expr, opts CompileOptions) *Program {
	b := &compiler{}
	if !opts.DisableHashCons {
		b.intern = make(map[Subquery]int32)
	}
	idx := b.expr(e)
	// The wrapper is appended directly (not interned) so that the program
	// root is always the last entry, as the paper's evalST assumes.
	b.subs = append(b.subs, Subquery{Kind: KFilter, A: idx, B: -1})
	return &Program{Subs: b.subs, Source: e.String()}
}

// CompileBatch compiles several queries into ONE shared program: the
// QLists are merged with hash-consing across queries, so common
// subexpressions (a dissemination system's subscriptions overlap heavily)
// are evaluated once per node for the whole batch. The returned roots
// give each query's answer entry in the shared program; the program's own
// last entry is the wrapper of the final query.
//
// One bottomUp pass over a fragment answers every query in the batch —
// one visit per site for N subscriptions.
func CompileBatch(exprs []Expr) (*Program, []int32) {
	b := NewBatchBuilder()
	for _, e := range exprs {
		b.Add(e)
	}
	return b.Program()
}

// PrecompileKernel eagerly compiles and caches the fused lane kernel, so
// evaluation threads never race to build it inside the first fragment's
// traversal. Kernel() lazily does the same; this just front-loads the work.
func (p *Program) PrecompileKernel() *Program {
	p.Kernel()
	return p
}

// BatchBuilder builds a shared batch program incrementally — CompileBatch
// one query at a time. The coalescing scheduler uses it to know the fused
// QList size (the lane count) after every admission, so a window can flush
// the moment its lane budget is reached instead of estimating from the sum
// of the individual programs (which ignores cross-query sharing and
// over-counts heavily for overlapping subscription sets).
type BatchBuilder struct {
	c     compiler
	roots []int32
}

// NewBatchBuilder returns an empty builder.
func NewBatchBuilder() *BatchBuilder {
	return &BatchBuilder{c: compiler{intern: make(map[Subquery]int32)}}
}

// Add compiles e into the shared program and returns the index of its
// answer entry. Each query keeps its own ε[q] wrapper (interned:
// identical queries share even the wrapper).
func (b *BatchBuilder) Add(e Expr) int32 {
	idx := b.c.expr(e)
	root := b.c.add(Subquery{Kind: KFilter, A: idx, B: -1})
	b.roots = append(b.roots, root)
	return root
}

// Queries returns how many queries have been added.
func (b *BatchBuilder) Queries() int { return len(b.roots) }

// Lanes returns the current fused QList size — what every node of every
// fragment will pay per bottomUp visit for the whole batch.
func (b *BatchBuilder) Lanes() int { return len(b.c.subs) }

// Program finalizes and returns the shared program plus each query's answer
// entry, in Add order, with the fused lane kernel precompiled. The builder
// must not receive further Adds until Reset; the returned program and roots
// do not alias builder state that Reset reuses.
func (b *BatchBuilder) Program() (*Program, []int32) {
	if len(b.c.subs) == 0 {
		b.c.add(Subquery{Kind: KTrue, A: -1, B: -1})
	}
	p := &Program{Subs: b.c.subs}
	p.PrecompileKernel()
	return p, b.roots
}

// Reset returns the builder to its freshly constructed state while keeping
// the intern map's bucket storage, so a steady-state scheduler can compile
// every window's batch through one builder without re-growing the
// hash-consing table each round. The previously returned Program and roots
// remain valid: Reset abandons those slices rather than truncating them.
func (b *BatchBuilder) Reset() {
	clear(b.c.intern)
	b.c.subs = nil
	b.roots = nil
}

// MustCompileString parses and compiles, panicking on parse errors; it is
// the convenient form for fixed workloads and tests.
func MustCompileString(src string) *Program {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	p := Compile(e)
	p.Source = src
	return p
}

// CompileString parses and compiles src.
func CompileString(src string) (*Program, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	p := Compile(e)
	p.Source = src
	return p, nil
}

type compiler struct {
	subs   []Subquery
	intern map[Subquery]int32
}

func (c *compiler) add(s Subquery) int32 {
	if c.intern != nil {
		if i, ok := c.intern[s]; ok {
			return i
		}
	}
	i := int32(len(c.subs))
	c.subs = append(c.subs, s)
	if c.intern != nil {
		c.intern[s] = i
	}
	return i
}

func (c *compiler) expr(e Expr) int32 {
	switch e := e.(type) {
	case *Path:
		return c.path(e, -1)
	case *TextCmp:
		text := c.add(Subquery{Kind: KText, A: -1, B: -1, Str: e.Str})
		if e.Path == nil {
			return text
		}
		return c.path(e.Path, text)
	case *LabelCmp:
		return c.add(Subquery{Kind: KLabel, A: -1, B: -1, Str: e.Label})
	case *Not:
		return c.add(Subquery{Kind: KNot, A: c.expr(e.Q), B: -1})
	case *And:
		a := c.expr(e.Q1)
		b := c.expr(e.Q2)
		return c.add(Subquery{Kind: KAnd, A: a, B: b})
	case *Or:
		a := c.expr(e.Q1)
		b := c.expr(e.Q2)
		return c.add(Subquery{Kind: KOr, A: a, B: b})
	default:
		panic(fmt.Sprintf("xpath: unknown expression type %T", e))
	}
}

// path compiles a path whose final node must additionally satisfy the
// subquery tail (or nothing, when tail = -1), processing steps right to
// left. The normal-form construction follows Section 2.2:
//
//   - A          →  */ε[label()=A]
//   - step after //  merges its label test into the descendant-or-self
//     filter, as in Example 2.1 (//stock → //ε[label()=stock ∧ ...]);
//   - consecutive ε-filters merge into one conjunction (the last
//     normalize rule);
//   - a leading "/" matches the first step at the context node itself.
func (c *compiler) path(p *Path, tail int32) int32 {
	steps := p.Steps
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		switch s.Kind {
		case StepSelf:
			tail = c.filter(c.quals(s.Quals, -1), tail)
		case StepWildcard:
			inner := c.filter(c.quals(s.Quals, -1), tail)
			if i == 0 && p.Rooted {
				tail = inner // "/*[q]": test the context node itself
			} else {
				tail = c.step(KChild, inner)
			}
		case StepLabel:
			label := c.add(Subquery{Kind: KLabel, A: -1, B: -1, Str: s.Label})
			inner := c.filter(c.quals(s.Quals, label), tail)
			switch {
			case i > 0 && steps[i-1].Kind == StepDescOrSelf:
				// Merge with the preceding //: descendant-or-self whose
				// label matches. The // step's own qualifiers conjoin too.
				inner = c.filter(c.quals(steps[i-1].Quals, -1), inner)
				tail = c.step(KDesc, inner)
				i--
			case i == 0 && p.Rooted:
				tail = inner // "/A": test the context node's own label
			default:
				tail = c.step(KChild, inner)
			}
		case StepDescOrSelf:
			inner := c.filter(c.quals(s.Quals, -1), tail)
			tail = c.step(KDesc, inner)
		}
	}
	if tail < 0 {
		// The bare paths "." and "/" reduce to ε.
		tail = c.add(Subquery{Kind: KTrue, A: -1, B: -1})
	}
	return tail
}

// quals compiles a qualifier list (plus an optional leading label test) into
// a single conjunction index, or -1 when there is nothing to test.
func (c *compiler) quals(quals []Expr, label int32) int32 {
	conj := label
	for _, q := range quals {
		idx := c.expr(q)
		if conj < 0 {
			conj = idx
		} else {
			conj = c.add(Subquery{Kind: KAnd, A: conj, B: idx})
		}
	}
	return conj
}

// filter builds ε[q]/tail with the ε-merge rule. q = -1 means no test
// (returns tail); tail = -1 means no continuation.
func (c *compiler) filter(q, tail int32) int32 {
	if q < 0 {
		return tail
	}
	if tail < 0 {
		return c.add(Subquery{Kind: KFilter, A: q, B: -1})
	}
	t := c.subs[tail]
	switch t.Kind {
	case KFilter:
		// ε[q]/ε[q']/cont  →  ε[q ∧ q']/cont
		conj := c.add(Subquery{Kind: KAnd, A: q, B: t.A})
		return c.add(Subquery{Kind: KFilter, A: conj, B: t.B})
	case KText, KLabel, KTrue:
		// ε[q]/(self test)  →  ε[q ∧ test]
		conj := c.add(Subquery{Kind: KAnd, A: q, B: tail})
		return c.add(Subquery{Kind: KFilter, A: conj, B: -1})
	default:
		return c.add(Subquery{Kind: KFilter, A: q, B: tail})
	}
}

// step builds */q or //q. A missing continuation becomes ε, since the
// movement cases of Procedure bottomUp need an operand.
func (c *compiler) step(kind Kind, arg int32) int32 {
	if arg < 0 {
		arg = c.add(Subquery{Kind: KTrue, A: -1, B: -1})
	}
	return c.add(Subquery{Kind: kind, A: arg, B: -1})
}

// Validate checks that the program is well formed: operand indices in
// range and strictly smaller than their user (topological order), payloads
// present exactly for the leaf kinds. Sites run it on programs received
// from the network before evaluating them.
func (p *Program) Validate() error {
	if len(p.Subs) == 0 {
		return errors.New("xpath: empty program")
	}
	for i, s := range p.Subs {
		checkOperand := func(op int32, required bool) error {
			if op < 0 {
				if required {
					return fmt.Errorf("xpath: q%d (%s) missing operand", i+1, s.Kind)
				}
				return nil
			}
			if int(op) >= i {
				return fmt.Errorf("xpath: q%d (%s) refers forward to q%d", i+1, s.Kind, op+1)
			}
			return nil
		}
		switch s.Kind {
		case KTrue:
			// no operands
		case KLabel, KText:
			// payload only; empty strings are legal labels/texts
		case KChild, KDesc, KNot:
			if err := checkOperand(s.A, true); err != nil {
				return err
			}
		case KFilter:
			if err := checkOperand(s.A, true); err != nil {
				return err
			}
			if err := checkOperand(s.B, false); err != nil {
				return err
			}
		case KAnd, KOr:
			if err := checkOperand(s.A, true); err != nil {
				return err
			}
			if err := checkOperand(s.B, true); err != nil {
				return err
			}
		default:
			return fmt.Errorf("xpath: q%d has unknown kind %d", i+1, uint8(s.Kind))
		}
	}
	return nil
}

// ErrBadProgram is wrapped by program decoding failures.
var ErrBadProgram = errors.New("xpath: malformed program encoding")

// Encode serializes the program for shipping to sites: uvarint count, then
// per subquery a kind byte, uvarint(A+1), uvarint(B+1) and a
// length-prefixed payload string. |Encode(p)| is the O(|q|) quantity the
// paper charges for broadcasting the query.
func (p *Program) Encode() []byte {
	dst := binary.AppendUvarint(nil, uint64(len(p.Subs)))
	for _, s := range p.Subs {
		dst = append(dst, byte(s.Kind))
		dst = binary.AppendUvarint(dst, uint64(s.A+1))
		dst = binary.AppendUvarint(dst, uint64(s.B+1))
		dst = binary.AppendUvarint(dst, uint64(len(s.Str)))
		dst = append(dst, s.Str...)
	}
	return dst
}

// DecodeProgram parses an encoded program and validates it.
func DecodeProgram(buf []byte) (*Program, error) {
	pos := 0
	uvarint := func() (uint64, error) {
		v, n := binary.Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrBadProgram, pos)
		}
		pos += n
		return v, nil
	}
	count, err := uvarint()
	if err != nil {
		return nil, err
	}
	if count > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: count %d exceeds buffer", ErrBadProgram, count)
	}
	p := &Program{Subs: make([]Subquery, 0, count)}
	for i := uint64(0); i < count; i++ {
		if pos >= len(buf) {
			return nil, fmt.Errorf("%w: truncated at subquery %d", ErrBadProgram, i)
		}
		s := Subquery{Kind: Kind(buf[pos])}
		pos++
		a, err := uvarint()
		if err != nil {
			return nil, err
		}
		b, err := uvarint()
		if err != nil {
			return nil, err
		}
		s.A, s.B = int32(a)-1, int32(b)-1
		n, err := uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(buf)-pos) {
			return nil, fmt.Errorf("%w: string length %d exceeds buffer", ErrBadProgram, n)
		}
		s.Str = string(buf[pos : pos+int(n)])
		pos += int(n)
		p.Subs = append(p.Subs, s)
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadProgram, len(buf)-pos)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadProgram, err)
	}
	return p, nil
}

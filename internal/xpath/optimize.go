package xpath

// Optimize performs peephole simplification on a compiled program — the
// paper notes that tree-pattern minimization [21] is complementary to
// distributed evaluation; this is the fragment of it that pays off at the
// QList level. Rules (applied to fixpoint):
//
//   - ε[q]/ε      →  q's value        (Filter with KTrue test, no cont)
//   - q ∧ ε, ε ∧ q → q                (KTrue identity for And)
//   - q ∨ ε        → ε                (KTrue absorbs Or)
//   - q ∧ q, q ∨ q → q                (idempotence via shared indices)
//   - ¬¬q          → q
//
// Dead entries are then swept, preserving topological order; the root
// keeps answering the same query (the equivalence is property-tested).
// Smaller programs mean proportionally less bottomUp work at EVERY node
// of EVERY fragment, so the win multiplies by |T|.
func (p *Program) Optimize() *Program {
	// Work on a copy: the in-place KFilter rewrite must not mutate the
	// caller's program.
	cp := &Program{Subs: append([]Subquery(nil), p.Subs...), Source: p.Source}
	p = cp
	n := len(p.Subs)
	// redirect[i] = j means uses of entry i should use entry j instead.
	redirect := make([]int32, n)
	for i := range redirect {
		redirect[i] = int32(i)
	}
	resolve := func(i int32) int32 {
		for redirect[i] != i {
			i = redirect[i]
		}
		return i
	}
	isTrue := func(i int32) bool { return i >= 0 && p.Subs[resolve(i)].Kind == KTrue }

	changed := true
	for changed {
		changed = false
		for i := 0; i < n; i++ {
			if redirect[i] != int32(i) {
				continue
			}
			s := p.Subs[i]
			a := s.A
			if a >= 0 {
				a = resolve(a)
			}
			b := s.B
			if b >= 0 {
				b = resolve(b)
			}
			switch s.Kind {
			case KFilter:
				switch {
				case isTrue(a) && b < 0:
					// ε[ε] ≡ ε
					redirect[i] = a
					changed = true
				case isTrue(a) && b >= 0:
					// ε[ε]/q ≡ q
					redirect[i] = b
					changed = true
				case b >= 0 && isTrue(b):
					// ε[q]/ε ≡ ε[q]; drop the continuation by rewriting in
					// place (shape change, not a redirect).
					if p.Subs[i].B != -1 {
						p.Subs[i].B = -1
						changed = true
					}
				}
			case KAnd:
				switch {
				case isTrue(a):
					redirect[i] = b
					changed = true
				case isTrue(b):
					redirect[i] = a
					changed = true
				case a == b:
					redirect[i] = a
					changed = true
				}
			case KOr:
				switch {
				case isTrue(a) || isTrue(b):
					// q ∨ ε ≡ ε: point at whichever side is ε.
					if isTrue(a) {
						redirect[i] = a
					} else {
						redirect[i] = b
					}
					changed = true
				case a == b:
					redirect[i] = a
					changed = true
				}
			case KNot:
				if p.Subs[a].Kind == KNot {
					redirect[i] = resolve(p.Subs[a].A)
					changed = true
				}
			}
		}
	}

	// Sweep: keep entries reachable from the (resolved) root, renumbering.
	root := resolve(int32(p.Root()))
	keep := make([]bool, n)
	var mark func(i int32)
	mark = func(i int32) {
		i = resolve(i)
		if keep[i] {
			return
		}
		keep[i] = true
		s := p.Subs[i]
		if s.A >= 0 {
			mark(s.A)
		}
		if s.B >= 0 {
			mark(s.B)
		}
	}
	mark(root)

	newIdx := make([]int32, n)
	out := &Program{Source: p.Source}
	for i := 0; i < n; i++ {
		if !keep[i] || redirect[i] != int32(i) {
			newIdx[i] = -1
			continue
		}
		s := p.Subs[i]
		if s.A >= 0 {
			s.A = newIdx[resolve(s.A)]
		}
		if s.B >= 0 {
			s.B = newIdx[resolve(s.B)]
		}
		newIdx[i] = int32(len(out.Subs))
		out.Subs = append(out.Subs, s)
	}
	// The answer must stay "the last entry": if the resolved root is not
	// last (a redirect shrank the top), re-wrap it.
	rootNew := newIdx[root]
	if int(rootNew) != len(out.Subs)-1 {
		out.Subs = append(out.Subs, Subquery{Kind: KFilter, A: rootNew, B: -1})
	}
	return out
}

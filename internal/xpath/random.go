package xpath

import "math/rand"

// RandomSpec controls RandomQuery.
type RandomSpec struct {
	// Labels is the element vocabulary steps and label() tests draw from.
	Labels []string
	// Texts is the vocabulary of text() comparisons.
	Texts []string
	// MaxDepth bounds Boolean nesting; MaxSteps bounds path length.
	MaxDepth, MaxSteps int
	// AllowNot enables negation (off for workloads that want monotone
	// queries).
	AllowNot bool
}

func (s *RandomSpec) fill() {
	if len(s.Labels) == 0 {
		s.Labels = []string{"a", "b", "c", "d", "e"}
	}
	if len(s.Texts) == 0 {
		s.Texts = []string{"x", "y", "z"}
	}
	if s.MaxDepth <= 0 {
		s.MaxDepth = 3
	}
	if s.MaxSteps <= 0 {
		s.MaxSteps = 4
	}
}

// RandomQuery generates a random raw XBL expression, deterministic in r.
// The distribution is tuned so that on small random documents the answer is
// true roughly half the time, which keeps differential tests informative.
func RandomQuery(r *rand.Rand, spec RandomSpec) Expr {
	spec.fill()
	return randExpr(r, spec, spec.MaxDepth)
}

func randExpr(r *rand.Rand, spec RandomSpec, depth int) Expr {
	if depth <= 0 {
		return randLeaf(r, spec, 0)
	}
	switch r.Intn(6) {
	case 0:
		return &And{Q1: randExpr(r, spec, depth-1), Q2: randExpr(r, spec, depth-1)}
	case 1:
		return &Or{Q1: randExpr(r, spec, depth-1), Q2: randExpr(r, spec, depth-1)}
	case 2:
		if spec.AllowNot {
			return &Not{Q: randExpr(r, spec, depth-1)}
		}
		return randLeaf(r, spec, depth-1)
	default:
		return randLeaf(r, spec, depth-1)
	}
}

func randLeaf(r *rand.Rand, spec RandomSpec, qualDepth int) Expr {
	switch r.Intn(8) {
	case 0:
		return &LabelCmp{Label: spec.Labels[r.Intn(len(spec.Labels))]}
	case 1:
		p := randPath(r, spec, qualDepth)
		return &TextCmp{Path: p, Str: spec.Texts[r.Intn(len(spec.Texts))]}
	case 2:
		return &TextCmp{Path: nil, Str: spec.Texts[r.Intn(len(spec.Texts))]}
	default:
		return randPath(r, spec, qualDepth)
	}
}

func randPath(r *rand.Rand, spec RandomSpec, qualDepth int) *Path {
	n := 1 + r.Intn(spec.MaxSteps)
	p := &Path{Rooted: r.Intn(8) == 0}
	prevDesc := false
	for len(p.Steps) < n {
		var s Step
		switch r.Intn(10) {
		case 0:
			s = Step{Kind: StepSelf}
		case 1:
			s = Step{Kind: StepWildcard}
		case 2, 3:
			if prevDesc {
				// Avoid "////": put a test between consecutive //.
				s = Step{Kind: StepLabel, Label: spec.Labels[r.Intn(len(spec.Labels))]}
			} else {
				s = Step{Kind: StepDescOrSelf}
			}
		default:
			s = Step{Kind: StepLabel, Label: spec.Labels[r.Intn(len(spec.Labels))]}
		}
		if p.Rooted && len(p.Steps) == 0 && s.Kind == StepDescOrSelf {
			// The parser cannot produce "///"; keep generated queries
			// within the parseable surface syntax.
			s = Step{Kind: StepLabel, Label: spec.Labels[r.Intn(len(spec.Labels))]}
		}
		if qualDepth > 0 && r.Intn(4) == 0 {
			s.Quals = []Expr{randExpr(r, spec, qualDepth-1)}
		}
		prevDesc = s.Kind == StepDescOrSelf
		p.Steps = append(p.Steps, s)
	}
	return p
}

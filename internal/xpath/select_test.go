package xpath

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func TestCompileSelectShapes(t *testing.T) {
	cases := []struct {
		src   string
		kinds []SelectKind // excluding the implicit start step
	}{
		{`//a`, []SelectKind{SDescOrSelf}},
		{`a/b`, []SelectKind{SChild, SChild}},
		{`/a/b`, []SelectKind{SSelf, SChild}},
		{`.`, []SelectKind{SSelf}},
		{`*`, []SelectKind{SChild}},
		{`a//b/c`, []SelectKind{SChild, SDescOrSelf, SChild}},
		{`.//b`, []SelectKind{SSelf, SDescOrSelf}},
		{`a//`, []SelectKind{SChild, SDescOrSelf}},
		{`//*`, []SelectKind{SDescOrSelf, SChild}},
	}
	for _, c := range cases {
		sp, err := CompileSelectString(c.src)
		if err != nil {
			t.Errorf("%q: %v", c.src, err)
			continue
		}
		if sp.Chain[0].Kind != SSelf || sp.Chain[0].Test != -1 {
			t.Errorf("%q: missing start step", c.src)
		}
		got := sp.Chain[1:]
		if len(got) != len(c.kinds) {
			t.Errorf("%q: chain %v, want kinds %v", c.src, sp, c.kinds)
			continue
		}
		for i, k := range c.kinds {
			if got[i].Kind != k {
				t.Errorf("%q: step %d = %v, want %v", c.src, i+1, got[i].Kind, k)
			}
		}
	}
}

func TestCompileSelectRejects(t *testing.T) {
	for _, src := range []string{`//a && //b`, `label() = a`, `!a`, `a = "x"`} {
		e, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := CompileSelect(e); !errors.Is(err, ErrNotSelection) {
			t.Errorf("CompileSelect(%q) error = %v, want ErrNotSelection", src, err)
		}
	}
	// Over-long chains are refused.
	long := strings.Repeat("a/", MaxSelectChain) + "a"
	if _, err := CompileSelectString(long); err == nil {
		t.Error("over-long chain accepted")
	}
	// Bad syntax propagates.
	if _, err := CompileSelectString(`a[`); err == nil {
		t.Error("bad syntax accepted")
	}
}

func TestSelectProgramHelpers(t *testing.T) {
	sp, err := CompileSelectString(`//a[b]/c`)
	if err != nil {
		t.Fatal(err)
	}
	tests := sp.Tests()
	if len(tests) < 2 {
		t.Errorf("Tests() = %v, want the a∧b guard and the c guard", tests)
	}
	seen := map[int32]bool{}
	for _, ti := range tests {
		if seen[ti] {
			t.Errorf("Tests() returned duplicate %d", ti)
		}
		seen[ti] = true
	}
	s := sp.String()
	for _, want := range []string{"self", "desc", "child", "[q"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	for _, k := range []SelectKind{SSelf, SChild, SDescOrSelf, SelectKind(9)} {
		if k.String() == "" {
			t.Errorf("empty String for %d", k)
		}
	}
}

func TestSelectRawRejectsNonPath(t *testing.T) {
	root := xmltree.NewElement("r", "")
	if _, err := SelectRaw(MustParse(`a && b`), root); !errors.Is(err, ErrNotSelection) {
		t.Errorf("SelectRaw on a boolean: %v", err)
	}
	nodes, err := SelectRaw(MustParse(`.`), root)
	if err != nil || len(nodes) != 1 || nodes[0] != root {
		t.Errorf("SelectRaw(.) = %v, %v", nodes, err)
	}
}

// TestPropHashConsOffSameSemantics: disabling hash-consing changes only
// the program size, never its meaning.
func TestPropHashConsOffSameSemantics(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 1 + r.Intn(40)})
		e := RandomQuery(r, RandomSpec{AllowNot: true})
		shared := Compile(e)
		dup := CompileWithOptions(e, CompileOptions{DisableHashCons: true})
		if dup.QListSize() < shared.QListSize() {
			return false
		}
		if shared.Validate() != nil || dup.Validate() != nil {
			return false
		}
		// Raw-semantics check is enough: the eval package's differential
		// tests already tie Compile to EvalRaw; here we pin that both
		// programs describe the same query by size-independent structure.
		_ = tree
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCompileStringError(t *testing.T) {
	if _, err := CompileString(`a &&`); err == nil {
		t.Error("CompileString accepted a bad query")
	}
	p, err := CompileString(`//a`)
	if err != nil || p.Source != `//a` {
		t.Errorf("CompileString: %v, source %q", err, p.Source)
	}
}

func TestKindStrings(t *testing.T) {
	for k := KTrue; k <= KNot; k++ {
		if k.String() == "" || strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind should print Kind(n)")
	}
	// Token kind names (error-message quality).
	for k := tokEOF; k <= tokNot; k++ {
		if k.String() == "" {
			t.Errorf("token kind %d has no name", k)
		}
	}
}

func TestProgramString(t *testing.T) {
	p := MustCompileString(`//stock[code/text() = "yhoo"]`)
	s := p.String()
	for _, want := range []string{"q1:", "label", "text", "desc", "filter"} {
		if !strings.Contains(s, want) {
			t.Errorf("Program.String() missing %q:\n%s", want, s)
		}
	}
}

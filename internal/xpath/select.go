package xpath

import (
	"errors"
	"fmt"
)

// Selection support — the Section 8 extension: "a recent extension is
// capable of processing data selection XPath queries". A selection query
// is a path p; its answer at the document root is the SET of nodes
// reachable via p, not a truth value.
//
// A selection query compiles to a SelectProgram: a linear chain of moves
// (self / child / descendant-or-self), each guarded by a Boolean test that
// is itself a subquery of an ordinary QList program. The chain positions
// act as NFA states that the distributed top-down pass propagates over the
// tree (see internal/eval and SelectParBoX in internal/core).

// SelectKind is the move of one chain step.
type SelectKind uint8

const (
	// SSelf matches at the current node (ε steps, rooted first steps and
	// filter-only steps).
	SSelf SelectKind = iota
	// SChild moves to children.
	SChild
	// SDescOrSelf moves to descendants-or-self (the paper's //).
	SDescOrSelf
)

func (k SelectKind) String() string {
	switch k {
	case SSelf:
		return "self"
	case SChild:
		return "child"
	case SDescOrSelf:
		return "desc"
	default:
		return fmt.Sprintf("SelectKind(%d)", uint8(k))
	}
}

// SelectStep is one chain step: a move plus an optional guard, given as a
// subquery index into Bool (-1 = unguarded).
type SelectStep struct {
	Kind SelectKind
	Test int32
}

// SelectProgram is a compiled selection query.
type SelectProgram struct {
	// Bool is the QList program containing every guard subquery. It is
	// evaluated per node by the usual bottom-up procedure.
	Bool *Program
	// Chain is the move sequence; a node reached after the last step is
	// selected. Chains are limited to 64 steps (state sets are bitmasks).
	Chain []SelectStep
	// Source is the original query text.
	Source string
}

// MaxSelectChain bounds the chain length (NFA states fit in a uint64).
const MaxSelectChain = 64

// ErrNotSelection is returned when a query is not a plain path.
var ErrNotSelection = errors.New("xpath: selection queries must be plain paths (no top-level booleans)")

// CompileSelect compiles a raw path expression into a selection program,
// following the same normalization conventions as Compile (desc-merge of
// label steps, rooted first steps matching the context node).
func CompileSelect(e Expr) (*SelectProgram, error) {
	p, ok := e.(*Path)
	if !ok {
		return nil, ErrNotSelection
	}
	b := &compiler{intern: make(map[Subquery]int32)}
	var chain []SelectStep

	steps := p.Steps
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		switch s.Kind {
		case StepSelf:
			chain = append(chain, SelectStep{Kind: SSelf, Test: b.quals(s.Quals, -1)})
		case StepWildcard:
			kind := SChild
			if i == 0 && p.Rooted {
				kind = SSelf
			}
			chain = append(chain, SelectStep{Kind: kind, Test: b.quals(s.Quals, -1)})
		case StepLabel:
			label := b.add(Subquery{Kind: KLabel, A: -1, B: -1, Str: s.Label})
			test := b.quals(s.Quals, label)
			switch {
			case i == 0 && p.Rooted:
				chain = append(chain, SelectStep{Kind: SSelf, Test: test})
			default:
				chain = append(chain, SelectStep{Kind: SChild, Test: test})
			}
		case StepDescOrSelf:
			test := b.quals(s.Quals, -1)
			// Desc-merge: a label step directly after // folds its test
			// into the descendant-or-self move (Example 2.1 semantics).
			if i+1 < len(steps) && steps[i+1].Kind == StepLabel {
				nxt := steps[i+1]
				label := b.add(Subquery{Kind: KLabel, A: -1, B: -1, Str: nxt.Label})
				merged := b.quals(nxt.Quals, label)
				if test >= 0 {
					merged = b.add(Subquery{Kind: KAnd, A: test, B: merged})
				}
				chain = append(chain, SelectStep{Kind: SDescOrSelf, Test: merged})
				i++
			} else {
				chain = append(chain, SelectStep{Kind: SDescOrSelf, Test: test})
			}
		}
	}
	// Step 0 is always an untested self step: the uniform "start" state, so
	// the document root and fragment roots are processed identically by
	// the distributed pass (arrival mask 1 starts the machine).
	chain = append([]SelectStep{{Kind: SSelf, Test: -1}}, chain...)
	if len(chain) > MaxSelectChain {
		return nil, fmt.Errorf("xpath: selection chain of %d steps exceeds the %d-step limit", len(chain), MaxSelectChain)
	}
	// Guard programs must be non-empty for the evaluator; ensure at least
	// one subquery exists.
	if len(b.subs) == 0 {
		b.add(Subquery{Kind: KTrue, A: -1, B: -1})
	}
	sp := &SelectProgram{Bool: &Program{Subs: b.subs, Source: e.String()}, Chain: chain, Source: e.String()}
	return sp, nil
}

// CompileSelectString parses and compiles a selection query.
func CompileSelectString(src string) (*SelectProgram, error) {
	e, err := Parse(src)
	if err != nil {
		return nil, err
	}
	sp, err := CompileSelect(e)
	if err != nil {
		return nil, err
	}
	sp.Source = src
	return sp, nil
}

// Tests returns the distinct guard subquery indices used by the chain.
func (sp *SelectProgram) Tests() []int32 {
	seen := make(map[int32]bool)
	var out []int32
	for _, s := range sp.Chain {
		if s.Test >= 0 && !seen[s.Test] {
			seen[s.Test] = true
			out = append(out, s.Test)
		}
	}
	return out
}

// String renders the chain for debugging.
func (sp *SelectProgram) String() string {
	out := ""
	for i, s := range sp.Chain {
		if i > 0 {
			out += " → "
		}
		out += s.Kind.String()
		if s.Test >= 0 {
			out += fmt.Sprintf("[q%d]", s.Test+1)
		}
	}
	return out
}

// Package xpath implements XBL, the class of Boolean XPath queries of the
// paper (Section 2.2):
//
//	q := p | p/text() = str | label() = A | ¬q | q ∧ q | q ∨ q
//	p := ε | A | * | p//p | p/p | p[q]
//
// The package provides a lexer and parser for a textual surface syntax, the
// linear-time normalize(q) rewriting to the paper's normal form, and the
// QList(q) compiler that produces a flat, topologically sorted Program of
// subqueries — the exact input of Procedure bottomUp. A slow reference
// interpreter over the raw AST (EvalRaw) backs the differential property
// tests.
//
// Surface syntax accepted by Parse:
//
//	[//broker[//stock/code = "goog" && !(//stock/code = "yhoo")]]
//
//	– the outer [...] is optional;
//	– conjunction: "&&" or "and";  disjunction: "||" or "or";
//	  negation: "!" or "not" (prefix);
//	– p = "str" abbreviates p/text() = "str"; strings quote with " or ';
//	– steps: name, "*", "." (ε); separators "/" and "//";
//	  a leading "/" anchors the first step at the context node itself;
//	  qualifiers "[q]" may follow any step;
//	– label() = name and text() = "str" are the primitive tests.
package xpath

import (
	"fmt"
	"strings"
)

// Expr is a raw (pre-normalization) XBL Boolean expression.
type Expr interface {
	exprNode()
	// String renders the expression in the surface syntax.
	String() string
}

// Path is the raw path expression p: a sequence of steps evaluated from the
// context node. Its Boolean value is "some node is reachable via the steps".
type Path struct {
	// Rooted records a leading "/": the first step is matched against the
	// context node itself rather than its children.
	Rooted bool
	Steps  []Step
}

// StepKind distinguishes the four step shapes of the grammar.
type StepKind uint8

const (
	// StepSelf is ε, written ".".
	StepSelf StepKind = iota
	// StepLabel moves to children with a given label.
	StepLabel
	// StepWildcard moves to all children, written "*".
	StepWildcard
	// StepDescOrSelf is the "//" connector: descendant-or-self.
	StepDescOrSelf
)

// Step is one component of a path: an axis/test plus optional qualifiers.
type Step struct {
	Kind  StepKind
	Label string // for StepLabel
	Quals []Expr // qualifiers [q] attached to this step
}

// TextCmp is the predicate p/text() = Str. An empty path compares the
// context node's own text.
type TextCmp struct {
	Path *Path // may be nil: text() = "str" at the context node
	Str  string
}

// LabelCmp is the predicate label() = Label at the context node.
type LabelCmp struct {
	Label string
}

// Not is ¬Q.
type Not struct{ Q Expr }

// And is Q1 ∧ Q2.
type And struct{ Q1, Q2 Expr }

// Or is Q1 ∨ Q2.
type Or struct{ Q1, Q2 Expr }

func (*Path) exprNode()     {}
func (*TextCmp) exprNode()  {}
func (*LabelCmp) exprNode() {}
func (*Not) exprNode()      {}
func (*And) exprNode()      {}
func (*Or) exprNode()       {}

func (p *Path) String() string {
	var b strings.Builder
	if p.Rooted {
		b.WriteByte('/')
	}
	for i, s := range p.Steps {
		if i > 0 && s.Kind != StepDescOrSelf && p.Steps[i-1].Kind != StepDescOrSelf {
			b.WriteByte('/')
		}
		switch s.Kind {
		case StepSelf:
			b.WriteByte('.')
		case StepLabel:
			b.WriteString(s.Label)
		case StepWildcard:
			b.WriteByte('*')
		case StepDescOrSelf:
			b.WriteString("//")
		}
		for _, q := range s.Quals {
			fmt.Fprintf(&b, "[%s]", q.String())
		}
	}
	if len(p.Steps) == 0 && !p.Rooted {
		b.WriteByte('.')
	}
	return b.String()
}

func (t *TextCmp) String() string {
	if t.Path == nil {
		return fmt.Sprintf("text() = %q", t.Str)
	}
	ps := t.Path.String()
	sep := "/"
	if strings.HasSuffix(ps, "/") {
		sep = "" // after a trailing "//" (or the bare "/"), no extra slash
	}
	return fmt.Sprintf("%s%stext() = %q", ps, sep, t.Str)
}

func (l *LabelCmp) String() string { return fmt.Sprintf("label() = %s", l.Label) }

func (n *Not) String() string { return fmt.Sprintf("!(%s)", n.Q.String()) }

func (a *And) String() string { return fmt.Sprintf("(%s && %s)", a.Q1.String(), a.Q2.String()) }

func (o *Or) String() string { return fmt.Sprintf("(%s || %s)", o.Q1.String(), o.Q2.String()) }

package xpath

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/boolexpr"
)

// kernelRef is the scalar per-lane reference for LaneKernel.EvalConst: the
// nine cases of Procedure bottomUp evaluated lane by lane (the shape of
// eval.evalCasesBits, duplicated here so the xpath package can pin its own
// kernel without importing the evaluator).
func kernelRef(v boolexpr.BitVec, prog *Program, label, text string, cv, dv boolexpr.BitVec) {
	for i, sq := range prog.Subs {
		var b bool
		switch sq.Kind {
		case KTrue:
			b = true
		case KLabel:
			b = label == sq.Str
		case KText:
			b = text == sq.Str
		case KChild:
			b = cv.Get(sq.A)
		case KFilter:
			b = v.Get(sq.A) && (sq.B < 0 || v.Get(sq.B))
		case KDesc:
			b = dv.Get(sq.A)
		case KOr:
			b = v.Get(sq.A) || v.Get(sq.B)
		case KAnd:
			b = v.Get(sq.A) && v.Get(sq.B)
		case KNot:
			b = !v.Get(sq.A)
		}
		if b {
			v.Set(int32(i))
			dv.Set(int32(i))
		}
	}
}

func bitVecEq(a, b boolexpr.BitVec) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestKernelMatchesPerLane: on random batch programs — from 1 lane to well
// past the single-word boundary — and random (label, text, CV, DV) node
// inputs, EvalConst computes exactly the per-lane loop's V and DV.
func TestKernelMatchesPerLane(t *testing.T) {
	labels := []string{"a", "b", "c", "d", "longer-label-name-beyond-bucket-cap-aaaaaaaaaaaa"}
	texts := []string{"x", "y", ""}
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		nq := 1 + r.Intn(12)
		b := NewBatchBuilder()
		for i := 0; i < nq; i++ {
			b.Add(RandomQuery(r, RandomSpec{Labels: labels, Texts: texts, AllowNot: true, MaxDepth: 4, MaxSteps: 6}))
		}
		prog, _ := b.Program()
		if err := prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		kern := prog.Kernel()
		if kern.Lanes() != len(prog.Subs) {
			t.Fatalf("seed %d: kernel lanes %d != program %d", seed, kern.Lanes(), len(prog.Subs))
		}
		n := len(prog.Subs)
		for trial := 0; trial < 50; trial++ {
			cv, dv1, dv2 := boolexpr.NewBitVec(n), boolexpr.NewBitVec(n), boolexpr.NewBitVec(n)
			for i := 0; i < n; i++ {
				if r.Intn(2) == 0 {
					cv.Set(int32(i))
				}
				if r.Intn(2) == 0 {
					dv1.Set(int32(i))
					dv2.Set(int32(i))
				}
			}
			label := labels[r.Intn(len(labels))]
			text := texts[r.Intn(len(texts))]
			got, want := boolexpr.NewBitVec(n), boolexpr.NewBitVec(n)
			kern.EvalConst(got, cv, dv1, label, text)
			kernelRef(want, prog, label, text, cv, dv2)
			if !bitVecEq(got, want) || !bitVecEq(dv1, dv2) {
				t.Fatalf("seed %d trial %d: kernel diverges from per-lane\nprogram:\n%s\nkernel:\n%s",
					seed, trial, prog, kern)
			}
		}
	}
}

// TestKernelSharedShapes pins the sublinearity mechanism: same-shaped
// queries over different constants must collapse into the same op groups,
// so the structural op count stays flat as copies stack lanes.
func TestKernelSharedShapes(t *testing.T) {
	shape := func(i int) Expr {
		e, err := Parse(fmt.Sprintf(`//s%d[//code%d[text() = "v%d"] && price%d]`, i, i, i, i))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	progOne, _ := CompileBatch([]Expr{shape(0)})
	opsOne := progOne.Kernel().Ops()

	var many []Expr
	for i := 0; i < 64; i++ {
		many = append(many, shape(i))
	}
	progMany, _ := CompileBatch(many)
	opsMany := progMany.Kernel().Ops()
	if opsMany > opsOne+2 {
		t.Errorf("64 same-shaped queries need %d op groups, one needs %d — shapes are not being shared", opsMany, opsOne)
	}
}

// TestKernelDeterministic: recompiling the same program yields the same
// plan (the op sort must not depend on map iteration order).
func TestKernelDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var exprs []Expr
	for i := 0; i < 8; i++ {
		exprs = append(exprs, RandomQuery(r, RandomSpec{AllowNot: true}))
	}
	prog, _ := CompileBatch(exprs)
	plan := CompileKernel(prog).String()
	for i := 0; i < 10; i++ {
		if again := CompileKernel(prog).String(); again != plan {
			t.Fatalf("plan changed between compiles:\n%s\nvs\n%s", plan, again)
		}
	}
	if prog.Kernel() != prog.Kernel() {
		t.Error("Kernel() is not cached")
	}
}

// TestBatchBuilderReset: Reset must leave previously returned programs and
// roots untouched, and a reused builder must compile exactly what a fresh
// one would.
func TestBatchBuilderReset(t *testing.T) {
	q1 := MustCompileString(`//a[b]`) // just for parity with Parse below
	_ = q1
	e1, _ := Parse(`//a[b && c]`)
	e2, _ := Parse(`//x[text() = "t"]`)
	e3, _ := Parse(`//y || //z`)

	b := NewBatchBuilder()
	b.Add(e1)
	b.Add(e2)
	prog1, roots1 := b.Program()
	subsBefore := append([]Subquery(nil), prog1.Subs...)
	rootsBefore := append([]int32(nil), roots1...)

	b.Reset()
	if b.Queries() != 0 || b.Lanes() != 0 {
		t.Fatalf("Reset left %d queries / %d lanes", b.Queries(), b.Lanes())
	}
	b.Add(e3)
	prog2, roots2 := b.Program()

	for i := range subsBefore {
		if prog1.Subs[i] != subsBefore[i] {
			t.Fatal("Reset mutated a previously returned program")
		}
	}
	for i := range rootsBefore {
		if roots1[i] != rootsBefore[i] {
			t.Fatal("Reset mutated previously returned roots")
		}
	}

	fresh, freshRoots := CompileBatch([]Expr{e3})
	if len(prog2.Subs) != len(fresh.Subs) {
		t.Fatalf("reused builder compiled %d subs, fresh %d", len(prog2.Subs), len(fresh.Subs))
	}
	for i := range fresh.Subs {
		if prog2.Subs[i] != fresh.Subs[i] {
			t.Fatalf("sub %d: reused %+v, fresh %+v", i, prog2.Subs[i], fresh.Subs[i])
		}
	}
	if len(roots2) != len(freshRoots) || roots2[0] != freshRoots[0] {
		t.Fatalf("reused roots %v, fresh %v", roots2, freshRoots)
	}
	if prog2.Fingerprint() != fresh.Fingerprint() {
		t.Error("fingerprints diverge between reused and fresh builder")
	}
}

// TestBatchBuilderSteadyStateAllocs pins the cross-window reuse win: once
// warmed, a full window cycle (Add the round's queries, finalize, Reset)
// through one builder allocates a bounded handful of objects — the program
// + roots + kernel that escape to the round, not a fresh compiler's maps.
func TestBatchBuilderSteadyStateAllocs(t *testing.T) {
	var exprs []Expr
	for i := 0; i < 16; i++ {
		e, err := Parse(fmt.Sprintf(`//sub%d[code && text() = "v%d"]`, i%6, i%6))
		if err != nil {
			t.Fatal(err)
		}
		exprs = append(exprs, e)
	}
	b := NewBatchBuilder()
	reusedRound := func() {
		for _, e := range exprs {
			b.Add(e)
		}
		prog, roots := b.Program()
		if len(roots) != len(exprs) || prog.Kernel() == nil {
			t.Fatal("round produced wrong program")
		}
		b.Reset()
	}
	freshRound := func() {
		fb := NewBatchBuilder()
		for _, e := range exprs {
			fb.Add(e)
		}
		prog, roots := fb.Program()
		if len(roots) != len(exprs) || prog.Kernel() == nil {
			t.Fatal("round produced wrong program")
		}
	}
	reusedRound() // warm the intern map once
	reused := testing.AllocsPerRun(50, reusedRound)
	fresh := testing.AllocsPerRun(50, freshRound)
	// What escapes per round — subs + roots + Program + compiled kernel —
	// is charged either way; the reused builder must shed the fresh
	// compiler's intern-map construction on top of that, and stay under an
	// absolute cap that a per-round map rebuild cannot meet.
	if reused >= fresh {
		t.Errorf("reused builder allocates %.0f objects per round, fresh builder %.0f — Reset buys nothing", reused, fresh)
	}
	if reused > 80 {
		t.Errorf("steady-state window cycle allocates %.0f objects — builder reuse is broken", reused)
	}
}

package xpath

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`//broker[name = "Merill Lynch"] && !(label() = x) or y`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokenKind{
		tokDblSlash, tokName, tokLBracket, tokName, tokEq, tokString, tokRBracket,
		tokAnd, tokNot, tokLParen, tokName, tokLParen, tokRParen, tokEq, tokName,
		tokRParen, tokOr, tokName, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexUnicodeOperators(t *testing.T) {
	toks, err := lex(`a ∧ ¬b ∨ c`)
	if err != nil {
		t.Fatal(err)
	}
	want := []tokenKind{tokName, tokAnd, tokNot, tokName, tokOr, tokName, tokEOF}
	for i, k := range want {
		if toks[i].kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].kind, k)
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `a & b`, `a | b`, `$x`} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded, want error", src)
		}
	}
}

func TestParseAccepts(t *testing.T) {
	cases := []string{
		`//a && //b`,
		`[//a && //b]`,
		`//stock[code/text() = "yhoo"]`,
		`//broker[//stock/code = "goog" && !(//stock/code = "yhoo")]`,
		`/portofolio/broker/name = "Merill Lynch"`,
		`label() = broker`,
		`text() = "42"`,
		`.`,
		`*`,
		`/`,
		`a//`,
		`a//[label() = b]`,
		`.//b[. = "x"]`,
		`not (a or b) and c`,
		`a[b][c]`,
		`*[text() = "v"]/e`,
		`//a//b//c`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err != nil {
			t.Errorf("Parse(%q): %v", src, err)
		}
	}
}

func TestParseRejects(t *testing.T) {
	cases := []string{
		``,
		`[`,
		`[a`,
		`a]`,
		`a &&`,
		`a/`,
		`a = b`, // comparison value must be quoted
		`label() = `,
		`text() = 5x`,
		`()`,
		`a[[b]]`,
		`a b`,
		`!`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) error %v is not ErrSyntax", src, err)
		}
	}
}

func TestParseStringRoundTrip(t *testing.T) {
	cases := []string{
		`//a && //b`,
		`//stock[code/text() = "yhoo"]`,
		`/a/b`,
		`a//b[c]`,
		`!(a) || (b && c)`,
		`.//b`,
		`a//`,
	}
	for _, src := range cases {
		e1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		e2, err := Parse(e1.String())
		if err != nil {
			t.Fatalf("reparse of %q → %q: %v", src, e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("round trip of %q: %q != %q", src, e1.String(), e2.String())
		}
	}
}

// TestPropParseStringRoundTrip: String() of every random query reparses to
// an identical AST (compared via String()).
func TestPropParseStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := RandomQuery(r, RandomSpec{AllowNot: true})
		s := e.String()
		e2, err := Parse(s)
		if err != nil {
			t.Logf("Parse(%q): %v", s, err)
			return false
		}
		return e2.String() == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestExample21 reproduces Example 2.1 of the paper: the query
// //stock[code/text() = "yhoo"] compiles to a QList with exactly ten
// subqueries of the expected shapes, ending in the ε[...] wrapper.
func TestExample21(t *testing.T) {
	p := MustCompileString(`//stock[code/text() = "yhoo"]`)
	if got := p.QListSize(); got != 10 {
		t.Fatalf("QListSize = %d, want 10 (Example 2.1)\n%s", got, p)
	}
	counts := make(map[Kind]int)
	for _, s := range p.Subs {
		counts[s.Kind]++
	}
	want := map[Kind]int{
		KLabel: 2, KText: 1, KAnd: 2, KFilter: 3, KChild: 1, KDesc: 1,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("count of %v = %d, want %d\n%s", k, counts[k], n, p)
		}
	}
	// The wrapper ε[q9] must be last, referencing the // subquery.
	root := p.Subs[p.Root()]
	if root.Kind != KFilter || root.B != -1 {
		t.Errorf("root subquery = %+v, want trailing filter", root)
	}
	if p.Subs[root.A].Kind != KDesc {
		t.Errorf("root operand kind = %v, want desc", p.Subs[root.A].Kind)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCompileHashConsing(t *testing.T) {
	// //a && //a: the two conjuncts must share their subqueries.
	p := MustCompileString(`//a && //a`)
	and := p.Subs[p.Subs[p.Root()].A]
	if and.Kind != KAnd {
		t.Fatalf("expected And below the wrapper, got %v", and.Kind)
	}
	if and.A != and.B {
		t.Errorf("identical conjuncts were not shared: %d vs %d", and.A, and.B)
	}
}

func TestCompileQListSizes(t *testing.T) {
	// The experiment workloads advertise |QList| ∈ {2, 8, 15, 23}; pin a few
	// simple queries so that size regressions are caught here first.
	cases := []struct {
		src  string
		size int
	}{
		{`.`, 2},   // ε + wrapper
		{`//a`, 4}, // label, desc-merged filter, desc, wrapper
		{`label() = a`, 2},
	}
	for _, c := range cases {
		p := MustCompileString(c.src)
		if p.QListSize() != c.size {
			t.Errorf("QListSize(%q) = %d, want %d\n%s", c.src, p.QListSize(), c.size, p)
		}
	}
}

func TestProgramEncodeDecode(t *testing.T) {
	p := MustCompileString(`//broker[//stock/code = "goog" && !(//stock/code = "yhoo")]`)
	enc := p.Encode()
	q, err := DecodeProgram(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Subs) != len(p.Subs) {
		t.Fatalf("decoded %d subs, want %d", len(q.Subs), len(p.Subs))
	}
	for i := range p.Subs {
		if p.Subs[i] != q.Subs[i] {
			t.Errorf("sub %d: got %+v, want %+v", i, q.Subs[i], p.Subs[i])
		}
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},                        // zero subqueries
		{200, 1, 1},                // count exceeds buffer
		{1, 99, 0, 0, 0},           // unknown kind
		{1, byte(KChild), 0, 0, 0}, // child without operand
		{1, byte(KChild), 5, 0, 0}, // forward reference
		append(MustCompileString(`a`).Encode(), 7), // trailing byte
	}
	for i, buf := range cases {
		if _, err := DecodeProgram(buf); err == nil {
			t.Errorf("case %d: DecodeProgram succeeded, want error", i)
		}
	}
}

// TestPropCompileValidates: every random query compiles to a valid,
// codec-round-trippable program.
func TestPropCompileValidates(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := RandomQuery(r, RandomSpec{AllowNot: true})
		p := Compile(e)
		if p.Validate() != nil {
			return false
		}
		q, err := DecodeProgram(p.Encode())
		if err != nil || len(q.Subs) != len(p.Subs) {
			return false
		}
		for i := range p.Subs {
			if p.Subs[i] != q.Subs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// fig1b builds the stock portfolio of Fig. 1(b) (slightly reduced).
func fig1b() *xmltree.Node {
	stock := func(code, buy, sell string) *xmltree.Node {
		return xmltree.NewElement("stock", "",
			xmltree.NewElement("code", code),
			xmltree.NewElement("buy", buy),
			xmltree.NewElement("sell", sell))
	}
	return xmltree.NewElement("portofolio", "",
		xmltree.NewElement("broker", "",
			xmltree.NewElement("name", "Bache"),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NYSE"),
				stock("IBM", "80", "78")),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NASDAQ"),
				stock("GOOG", "374", "373"),
				stock("YHOO", "33", "35"))),
		xmltree.NewElement("broker", "",
			xmltree.NewElement("name", "Merill Lynch"),
			xmltree.NewElement("market", "",
				xmltree.NewElement("name", "NASDAQ"),
				stock("GOOG", "370", "372"),
				stock("AAPL", "71", "65"))))
}

func TestEvalRawOnPortfolio(t *testing.T) {
	root := fig1b()
	cases := []struct {
		src  string
		want bool
	}{
		{`//stock[code/text() = "yhoo"]`, false}, // case-sensitive
		{`//stock[code/text() = "YHOO"]`, true},
		{`//stock[code = "GOOG" && sell = "373"]`, true},
		{`//stock[code = "GOOG" && sell = "999"]`, false},
		{`/portofolio/broker/name = "Merill Lynch"`, true},
		{`/portofolio/broker/name = "Lehman"`, false},
		{`/broker`, false}, // leading / anchors at the context node
		{`//broker[//stock/code = "GOOG" && !(//stock/code = "YHOO")]`, true},
		{`//market[name = "NYSE"] && //market[name = "NASDAQ"]`, true},
		{`label() = portofolio`, true},
		{`label() = broker`, false},
		{`//name[text() = "Bache"]`, true},
		{`broker/market/stock`, true},
		{`broker/stock`, false},
		{`.//stock`, true},
		{`*`, true},
		{`.`, true},
		{`/`, true},
		{`stock`, false},
		{`!(//stock[code = "MSFT"])`, true},
		{`//stock[code = "AAPL"][sell = "65"]`, true},
		{`//stock[code = "AAPL"][sell = "66"]`, false},
		{`a//`, false},
		{`broker//`, true},
		{`//.`, true},
	}
	for _, c := range cases {
		e, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if got := EvalRaw(e, root); got != c.want {
			t.Errorf("EvalRaw(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestEvalRawDescOrSelfSemantics(t *testing.T) {
	// Paper semantics (Example 2.1): //A holds at a context node labeled A
	// itself, because // is descendant-or-self and the label merges into
	// its filter.
	root := xmltree.NewElement("a", "", xmltree.NewElement("b", ""))
	if !EvalRaw(MustParse(`//a`), root) {
		t.Error("//a must hold at a context node labeled a (descendant-or-self)")
	}
	if !EvalRaw(MustParse(`//b`), root) {
		t.Error("//b must hold via the child")
	}
	if EvalRaw(MustParse(`//c`), root) {
		t.Error("//c must not hold")
	}
	// But //*/x requires real descent: //*/b is b under some child.
	if EvalRaw(MustParse(`//*/b`), root) {
		t.Error("//*/b must not hold: b is a child of the root, not of a child")
	}
}

func TestQualifierOnDescStep(t *testing.T) {
	// a//[q] filters the descendant-or-self set by q.
	root := xmltree.NewElement("r", "",
		xmltree.NewElement("a", "",
			xmltree.NewElement("m", "", xmltree.NewElement("k", "v"))))
	if !EvalRaw(MustParse(`a//[k = "v"]`), root) {
		t.Error("a//[k = \"v\"] should hold")
	}
	if EvalRaw(MustParse(`a//[k = "w"]`), root) {
		t.Error("a//[k = \"w\"] should not hold")
	}
}

package xpath

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

func TestOptimizeShrinksTrivialities(t *testing.T) {
	cases := []struct {
		src     string
		maxSize int
	}{
		{`. && .`, 2},  // ε∧ε collapses
		{`.[.]`, 2},    // ε[ε] collapses
		{`a || .`, 2},  // absorbed by ε
		{`!(!(a))`, 4}, // double negation
		{`a && a`, 4},  // idempotent (shared by hash-consing already)
		{`.//b`, 4},    // leading ε filter folds away
	}
	for _, c := range cases {
		p := MustCompileString(c.src)
		o := p.Optimize()
		if err := o.Validate(); err != nil {
			t.Errorf("%q: optimized program invalid: %v\n%s", c.src, err, o)
			continue
		}
		if o.QListSize() > c.maxSize {
			t.Errorf("Optimize(%q): %d entries, want ≤ %d\nbefore:\n%safter:\n%s",
				c.src, o.QListSize(), c.maxSize, p, o)
		}
		if o.QListSize() > p.QListSize() {
			t.Errorf("%q: optimization grew the program (%d → %d)", c.src, p.QListSize(), o.QListSize())
		}
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	p := MustCompileString(`a[.] && .`)
	before := append([]Subquery(nil), p.Subs...)
	_ = p.Optimize()
	if len(before) != len(p.Subs) {
		t.Fatal("Optimize changed the input length")
	}
	for i := range before {
		if before[i] != p.Subs[i] {
			t.Fatalf("Optimize mutated input entry %d", i)
		}
	}
}

// TestPropOptimizePreservesSemantics: the optimized program answers
// exactly like the original on random documents — checked through the
// reference interpreter (raw semantics) to keep the oracle independent.
func TestPropOptimizePreservesSemantics(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 1 + int(sizeRaw%50)})
		e := RandomQuery(r, RandomSpec{AllowNot: true})
		p := Compile(e)
		o := p.Optimize()
		if o.Validate() != nil {
			t.Logf("invalid optimized program for %q", e.String())
			return false
		}
		if o.QListSize() > p.QListSize()+1 { // +1: a re-wrap may add one entry
			t.Logf("%q grew: %d → %d", e.String(), p.QListSize(), o.QListSize())
			return false
		}
		// Semantics via interpProgram on both (defined below) and EvalRaw.
		want := EvalRaw(e, tree)
		if interpProgram(p, tree) != want {
			t.Logf("compiled program deviates for %q (pre-existing bug?)", e.String())
			return false
		}
		if interpProgram(o, tree) != want {
			t.Logf("optimized program deviates for %q", e.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// interpProgram is a minimal bottom-up interpreter for compiled programs
// over complete trees, local to the tests (the real evaluator lives in
// internal/eval, which xpath cannot import).
func interpProgram(p *Program, root *xmltree.Node) bool {
	var rec func(n *xmltree.Node) (v, dv []bool, cv []bool)
	rec = func(n *xmltree.Node) ([]bool, []bool, []bool) {
		size := len(p.Subs)
		cv := make([]bool, size)
		dv := make([]bool, size)
		for _, c := range n.Children {
			if c.Virtual {
				continue
			}
			childV, childDV, _ := rec(c)
			for i := 0; i < size; i++ {
				cv[i] = cv[i] || childV[i]
				dv[i] = dv[i] || childDV[i]
			}
		}
		v := make([]bool, size)
		for i, sq := range p.Subs {
			var b bool
			switch sq.Kind {
			case KTrue:
				b = true
			case KLabel:
				b = n.Label == sq.Str
			case KText:
				b = n.Text == sq.Str
			case KChild:
				b = cv[sq.A]
			case KFilter:
				b = v[sq.A]
				if sq.B >= 0 {
					b = b && v[sq.B]
				}
			case KDesc:
				b = dv[sq.A]
			case KOr:
				b = v[sq.A] || v[sq.B]
			case KAnd:
				b = v[sq.A] && v[sq.B]
			case KNot:
				b = !v[sq.A]
			}
			v[i] = b
			dv[i] = b || dv[i]
		}
		return v, dv, cv
	}
	v, _, _ := rec(root)
	return v[p.Root()]
}

func TestOptimizeOnBenchmarkQueries(t *testing.T) {
	// The pinned benchmark queries are already minimal: optimization must
	// not change their size (they define the |QList| axis of the figures).
	for _, src := range []string{
		`//stock[code/text() = "yhoo"]`,
		`label() = site`,
	} {
		p := MustCompileString(src)
		if o := p.Optimize(); o.QListSize() != p.QListSize() {
			t.Errorf("Optimize(%q) changed size %d → %d", src, p.QListSize(), o.QListSize())
		}
	}
}

package xpath

import "repro/internal/xmltree"

// SelectRaw returns the node set a path selects from v — the reference
// oracle for the distributed selection extension. Non-path expressions
// return ErrNotSelection.
func SelectRaw(e Expr, v *xmltree.Node) ([]*xmltree.Node, error) {
	p, ok := e.(*Path)
	if !ok {
		return nil, ErrNotSelection
	}
	return evalPath(p, v), nil
}

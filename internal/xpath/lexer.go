package xpath

import (
	"errors"
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// ErrSyntax is wrapped by all parse failures.
var ErrSyntax = errors.New("xpath: syntax error")

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokName
	tokString   // quoted string literal (value without quotes)
	tokSlash    // /
	tokDblSlash // //
	tokStar     // *
	tokDot      // .
	tokLBracket // [
	tokRBracket // ]
	tokLParen   // (
	tokRParen   // )
	tokEq       // =
	tokAnd      // && | and | ∧
	tokOr       // || | or | ∨
	tokNot      // ! | not | ¬
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokName:
		return "name"
	case tokString:
		return "string"
	case tokSlash:
		return "'/'"
	case tokDblSlash:
		return "'//'"
	case tokStar:
		return "'*'"
	case tokDot:
		return "'.'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEq:
		return "'='"
	case tokAnd:
		return "'&&'"
	case tokOr:
		return "'||'"
	case tokNot:
		return "'!'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input eagerly; queries are tiny (O(|q|)) so there
// is nothing to stream.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r, w := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += w
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	r, w := utf8.DecodeRuneInString(l.src[l.pos:])
	switch r {
	case '/':
		if strings.HasPrefix(l.src[l.pos:], "//") {
			l.pos += 2
			return token{kind: tokDblSlash, pos: start}, nil
		}
		l.pos++
		return token{kind: tokSlash, pos: start}, nil
	case '*':
		l.pos++
		return token{kind: tokStar, pos: start}, nil
	case '.':
		l.pos++
		return token{kind: tokDot, pos: start}, nil
	case '[':
		l.pos++
		return token{kind: tokLBracket, pos: start}, nil
	case ']':
		l.pos++
		return token{kind: tokRBracket, pos: start}, nil
	case '(':
		l.pos++
		return token{kind: tokLParen, pos: start}, nil
	case ')':
		l.pos++
		return token{kind: tokRParen, pos: start}, nil
	case '=':
		l.pos++
		return token{kind: tokEq, pos: start}, nil
	case '!':
		l.pos++
		return token{kind: tokNot, pos: start}, nil
	case '¬':
		l.pos += w
		return token{kind: tokNot, pos: start}, nil
	case '∧':
		l.pos += w
		return token{kind: tokAnd, pos: start}, nil
	case '∨':
		l.pos += w
		return token{kind: tokOr, pos: start}, nil
	case '&':
		if strings.HasPrefix(l.src[l.pos:], "&&") {
			l.pos += 2
			return token{kind: tokAnd, pos: start}, nil
		}
		return token{}, fmt.Errorf("%w: stray '&' at offset %d (use \"&&\")", ErrSyntax, start)
	case '|':
		if strings.HasPrefix(l.src[l.pos:], "||") {
			l.pos += 2
			return token{kind: tokOr, pos: start}, nil
		}
		return token{}, fmt.Errorf("%w: stray '|' at offset %d (use \"||\")", ErrSyntax, start)
	case '"', '\'':
		return l.lexString(r)
	}
	if isNameStart(r) {
		return l.lexName()
	}
	return token{}, fmt.Errorf("%w: unexpected character %q at offset %d", ErrSyntax, r, start)
}

func (l *lexer) lexString(quote rune) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		r, w := utf8.DecodeRuneInString(l.src[l.pos:])
		l.pos += w
		if r == quote {
			return token{kind: tokString, text: b.String(), pos: start}, nil
		}
		b.WriteRune(r)
	}
	return token{}, fmt.Errorf("%w: unterminated string starting at offset %d", ErrSyntax, start)
}

func (l *lexer) lexName() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, w := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isNamePart(r) {
			break
		}
		l.pos += w
	}
	text := l.src[start:l.pos]
	switch text {
	case "and":
		return token{kind: tokAnd, pos: start}, nil
	case "or":
		return token{kind: tokOr, pos: start}, nil
	case "not":
		return token{kind: tokNot, pos: start}, nil
	}
	return token{kind: tokName, text: text, pos: start}, nil
}

func isNameStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isNamePart(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

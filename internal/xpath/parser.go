package xpath

import "fmt"

// Parse parses an XBL query in the surface syntax described in the package
// comment and returns its raw AST. The outer [ ... ] brackets of the paper's
// notation are optional.
func Parse(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	bracketed := p.peek().kind == tokLBracket
	if bracketed {
		p.next()
	}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if bracketed {
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokEOF); err != nil {
		return nil, err
	}
	return e, nil
}

// MustParse is Parse that panics on error, for tests and fixed workloads.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) peek2() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1] // EOF
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokenKind) error {
	t := p.peek()
	if t.kind != k {
		return fmt.Errorf("%w: expected %s, found %s at offset %d in %q", ErrSyntax, k, t.kind, t.pos, p.src)
	}
	p.next()
	return nil
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("%w: %s at offset %d in %q", ErrSyntax, fmt.Sprintf(format, args...), t.pos, p.src)
}

func (p *parser) parseOr() (Expr, error) {
	e, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.next()
		rhs, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		e = &Or{Q1: e, Q2: rhs}
	}
	return e, nil
}

func (p *parser) parseAnd() (Expr, error) {
	e, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.next()
		rhs, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		e = &And{Q1: e, Q2: rhs}
	}
	return e, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.peek().kind == tokNot {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Q: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokLParen:
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokName:
		if t.text == "label" && p.peek2().kind == tokLParen {
			return p.parseLabelCmp()
		}
		if t.text == "text" && p.peek2().kind == tokLParen {
			// text() = "str" at the context node itself.
			p.next()
			if err := p.parseEmptyParens(); err != nil {
				return nil, err
			}
			str, err := p.parseEqString()
			if err != nil {
				return nil, err
			}
			return &TextCmp{Path: nil, Str: str}, nil
		}
		return p.parsePathExpr()
	case tokSlash, tokDblSlash, tokDot, tokStar:
		return p.parsePathExpr()
	default:
		return nil, p.errorf("expected a query, found %s", t.kind)
	}
}

func (p *parser) parseEmptyParens() error {
	if err := p.expect(tokLParen); err != nil {
		return err
	}
	return p.expect(tokRParen)
}

func (p *parser) parseEqString() (string, error) {
	if err := p.expect(tokEq); err != nil {
		return "", err
	}
	t := p.peek()
	if t.kind != tokString {
		return "", p.errorf("expected a quoted string, found %s", t.kind)
	}
	p.next()
	return t.text, nil
}

func (p *parser) parseLabelCmp() (Expr, error) {
	p.next() // "label"
	if err := p.parseEmptyParens(); err != nil {
		return nil, err
	}
	if err := p.expect(tokEq); err != nil {
		return nil, err
	}
	t := p.peek()
	switch t.kind {
	case tokName, tokString:
		p.next()
		return &LabelCmp{Label: t.text}, nil
	default:
		return nil, p.errorf("expected a label name, found %s", t.kind)
	}
}

// atTextBuiltin reports whether the upcoming tokens are `text ( )`.
func (p *parser) atTextBuiltin() bool {
	return p.peek().kind == tokName && p.peek().text == "text" && p.peek2().kind == tokLParen
}

func (p *parser) atTestStart() bool {
	switch p.peek().kind {
	case tokDot, tokStar:
		return true
	case tokName:
		return !p.atTextBuiltin()
	default:
		return false
	}
}

// parsePathExpr parses a path, including the p/text() = "str" and p = "str"
// predicate forms, returning a *Path or a *TextCmp.
func (p *parser) parsePathExpr() (Expr, error) {
	path := &Path{}
	switch p.peek().kind {
	case tokSlash:
		p.next()
		path.Rooted = true
	case tokDblSlash:
		p.next()
		st := Step{Kind: StepDescOrSelf}
		var err error
		if st.Quals, err = p.parseQuals(); err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, st)
		// "//[q]/b": a slash may separate the qualified // from the next
		// step (the inner separator loop handles the same shape mid-path).
		if p.peek().kind == tokSlash {
			p.next()
			if !p.atTestStart() && !p.atTextBuiltin() {
				return nil, p.errorf("expected a step after '/', found %s", p.peek().kind)
			}
		}
	}
steps:
	for {
		// A path component: the text() terminator, or a test step.
		if p.atTextBuiltin() {
			p.next() // "text"
			if err := p.parseEmptyParens(); err != nil {
				return nil, err
			}
			str, err := p.parseEqString()
			if err != nil {
				return nil, err
			}
			// ".../text() = str": drop a trivial self path so that
			// "text() = s" and "./text() = s" agree.
			if len(path.Steps) == 0 && !path.Rooted {
				return &TextCmp{Path: nil, Str: str}, nil
			}
			return &TextCmp{Path: path, Str: str}, nil
		}
		if p.atTestStart() {
			st := Step{}
			t := p.next()
			switch t.kind {
			case tokDot:
				st.Kind = StepSelf
			case tokStar:
				st.Kind = StepWildcard
			case tokName:
				st.Kind = StepLabel
				st.Label = t.text
			}
			var err error
			if st.Quals, err = p.parseQuals(); err != nil {
				return nil, err
			}
			path.Steps = append(path.Steps, st)
		} else {
			// No test here: legal only after a trailing "//" (the paper's
			// abbreviation p1// for p1/ //) or as the bare path "/".
			n := len(path.Steps)
			if n > 0 && path.Steps[n-1].Kind == StepDescOrSelf {
				break
			}
			if n == 0 && path.Rooted {
				break // bare "/" selects the context node itself
			}
			return nil, p.errorf("expected a path step, found %s", p.peek().kind)
		}
		// Separators: any number of "//" steps (each may carry
		// qualifiers), then either one "/" leading to the next component
		// or the end of the path.
		for {
			switch p.peek().kind {
			case tokSlash:
				p.next()
				if !p.atTestStart() && !p.atTextBuiltin() {
					return nil, p.errorf("expected a step after '/', found %s", p.peek().kind)
				}
				continue steps
			case tokDblSlash:
				p.next()
				st := Step{Kind: StepDescOrSelf}
				var err error
				if st.Quals, err = p.parseQuals(); err != nil {
					return nil, err
				}
				path.Steps = append(path.Steps, st)
				if p.atTestStart() || p.atTextBuiltin() {
					continue steps
				}
			default:
				break steps
			}
		}
	}
	if p.peek().kind == tokEq {
		str, err := p.parseEqString()
		if err != nil {
			return nil, err
		}
		return &TextCmp{Path: path, Str: str}, nil
	}
	return path, nil
}

func (p *parser) parseQuals() ([]Expr, error) {
	var quals []Expr
	for p.peek().kind == tokLBracket {
		p.next()
		q, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		quals = append(quals, q)
	}
	return quals, nil
}

package xpath

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/boolexpr"
)

// This file compiles a Program's QList into a LaneKernel: a word-parallel
// execution plan for the constant-plane body of Procedure bottomUp. The
// per-lane loop (eval.evalCasesBits) pays one branchy switch iteration per
// QList entry per node, so a fused batch of N queries costs N× per node
// even though the traversal is shared. The kernel regroups the lanes:
//
//   - Self-test lanes (ε, label()=l, text()=s) become per-string bit MASKS.
//     One node evaluates every label test of every query in the batch with
//     a single table lookup and a word-wise OR, however many queries — or
//     tenants — contributed one.
//   - Structural lanes (*/q, //q, ε[q]/q', ∧, ∨, ¬) become masked SHIFT
//     ops. The compiler emits operands at adjacent indices, so a lane
//     reading lane i-d is a shift by d; lanes sharing (dependency level,
//     connective, operand deltas) — which all copies of a query shape do,
//     wherever their lanes landed in the fused QList — collapse into ONE
//     op whose mask selects them all.
//
// The dependency schedule orders the ops: a lane may read the V bit of an
// earlier lane computed at the same node (the paper's left-to-right QList
// order), so each lane gets a level — 0 for lanes reading only the node
// and the child-fold inputs (CV, DV), 1 + max(operand levels) otherwise —
// and ops apply in level order. Within a level the masked source bits are
// all complete, so op order is free.
//
// Per-node cost is therefore O(distinct shapes × words), not O(lanes): a
// round fusing 64 structurally similar subscriptions pays for the shapes
// once, with the lanes riding along 64 to the machine word.

// LaneKernel is the compiled word-parallel plan of one Program. It is
// immutable after compilation and safe for concurrent use.
type LaneKernel struct {
	lanes, words int

	// Level-0 self tests: lanes set by looking at the node alone.
	trueMask []uint64  // ε lanes, set at every node
	labels   maskTable // label()=l lanes, keyed by l
	texts    maskTable // text()=s lanes, keyed by s

	// Structural ops in dependency-level order. ops1 is the single-word
	// specialization (≤64 lanes — the scheduler's default round budget);
	// exactly one of ops/ops1 is populated. ops1Leaf/opsLeaf are the same
	// plans specialized for childless nodes, where CV = DV = 0: child-fold
	// ops vanish and //q collapses to a same-word copy, so the (dominant)
	// leaf visits run an even shorter plan.
	ops      []laneOp
	ops1     []laneOp1
	ops1Leaf []laneOp1
	opsLeaf  []laneOp
}

// opKind is the fused connective of one kernel op.
type opKind uint8

const (
	// opChild: v |= shift(cv, d1) & mask — case */q reads the child fold.
	opChild opKind = iota
	// opDesc: v |= shift(dv|v, d1) & mask — case //q reads the descendant
	// accumulator as the sequential loop would observe it mid-iteration
	// (dv entries of earlier lanes already include their V at this node).
	opDesc
	// opCopy: v |= shift(v, d1) & mask — ε[q] with no continuation.
	opCopy
	// opAnd: v |= shift(v, d1) & shift(v, d2) & mask — ∧ and ε[q]/q'.
	opAnd
	// opOr: v |= (shift(v, d1) | shift(v, d2)) & mask.
	opOr
	// opNot: v |= ^shift(v, d1) & mask.
	opNot
)

// laneOp is one masked word-parallel op in the multi-word plan. The mask is
// sparse: only words with a selected lane are stored, so a batch of many
// heterogeneous shapes never pays more word ops than it has lanes.
type laneOp struct {
	kind   opKind
	d1, d2 int32
	idx    []int32  // word indices with at least one selected lane
	mask   []uint64 // parallel to idx
}

// laneOp1 is the single-word specialization: the whole vector lives in one
// register across the op sequence.
type laneOp1 struct {
	kind   opKind
	d1, d2 uint8 // lanes ≤ 64 ⇒ deltas < 64
	mask   uint64
}

// maskTable maps a string key to the lane mask of its self tests. Lookups
// run once per node, so the table is bucketed by key length: the common
// miss (a node label no query tests) costs one slice index, and hits
// compare only same-length candidates.
type maskTable struct {
	byLen [][]maskEntry // index min(len(key), maxLenBucket)
}

type maskEntry struct {
	key  string
	mask []uint64
}

// maxLenBucket caps the length-bucket index; longer keys share the last
// bucket and disambiguate by full comparison.
const maxLenBucket = 32

func (t *maskTable) add(key string, mask []uint64) {
	b := len(key)
	if b > maxLenBucket {
		b = maxLenBucket
	}
	if t.byLen == nil {
		t.byLen = make([][]maskEntry, maxLenBucket+1)
	}
	t.byLen[b] = append(t.byLen[b], maskEntry{key: key, mask: mask})
}

// lookup returns the mask for key, or nil.
func (t *maskTable) lookup(key string) []uint64 {
	if t.byLen == nil {
		return nil
	}
	b := len(key)
	if b > maxLenBucket {
		b = maxLenBucket
	}
	for i := range t.byLen[b] {
		if t.byLen[b][i].key == key {
			return t.byLen[b][i].mask
		}
	}
	return nil
}

// lookup1 is lookup for single-word kernels: the zero word means "absent or
// empty", which callers fold with OR either way.
func (t *maskTable) lookup1(key string) uint64 {
	if t.byLen == nil {
		return 0
	}
	b := len(key)
	if b > maxLenBucket {
		b = maxLenBucket
	}
	for i := range t.byLen[b] {
		if t.byLen[b][i].key == key {
			return t.byLen[b][i].mask[0]
		}
	}
	return 0
}

// Lanes returns the QList size the kernel was compiled for.
func (k *LaneKernel) Lanes() int { return k.lanes }

// Ops returns how many structural ops a node evaluation executes — the
// per-node work unit that stays near-constant as structurally similar
// queries stack lanes. Exposed for the lane-scaling benchmarks and tests.
func (k *LaneKernel) Ops() int {
	if k.words == 1 {
		return len(k.ops1)
	}
	return len(k.ops)
}

// Words reports the kernel's vector width in 64-bit words. 1 means the
// whole QList fits one machine word and the registers-only EvalConstWord
// form applies.
func (k *LaneKernel) Words() int { return k.words }

// EvalConstWord is EvalConst for single-word kernels with the entire node
// evaluation in registers: given the only word of the folded CV and DV
// vectors it returns the only word of V. The caller owns the dv |= v fold
// (line 17 of Procedure bottomUp). Must only be called when Words() == 1.
func (k *LaneKernel) EvalConstWord(cw, dw uint64, label, text string) uint64 {
	return k.evalOps1(k.LeafBase(label, text), cw, dw)
}

// evalOps1 runs the single-word structural plan over the self-test word.
func (k *LaneKernel) evalOps1(vw, cw, dw uint64) uint64 {
	for _, op := range k.ops1 {
		switch op.kind {
		case opChild:
			vw |= (cw << op.d1) & op.mask
		case opDesc:
			vw |= ((dw | vw) << op.d1) & op.mask
		case opCopy:
			vw |= (vw << op.d1) & op.mask
		case opAnd:
			vw |= (vw << op.d1) & (vw << op.d2) & op.mask
		case opOr:
			vw |= ((vw << op.d1) | (vw << op.d2)) & op.mask
		case opNot:
			vw |= ^(vw << op.d1) & op.mask
		}
	}
	return vw
}

// EvalLeafWord is EvalConstWord for a childless node: CV and DV are zero
// by construction, so the precompiled leaf plan (ops1Leaf) applies.
func (k *LaneKernel) EvalLeafWord(label, text string) uint64 {
	return k.EvalLeafPlan(k.LeafBase(label, text))
}

// LeafBase returns the self-test word of a childless node — the sole input
// to the leaf plan. A document's leaves collapse to very few distinct base
// words (most match no label or text test at all), so traversals memoize
// EvalLeafPlan keyed by this word instead of re-running the op loop.
func (k *LaneKernel) LeafBase(label, text string) uint64 {
	return k.trueMask[0] | k.labels.lookup1(label) | k.texts.lookup1(text)
}

// EvalLeafPlan runs the precompiled leaf plan on a base self-test word.
func (k *LaneKernel) EvalLeafPlan(vw uint64) uint64 {
	for _, op := range k.ops1Leaf {
		switch op.kind {
		case opCopy:
			vw |= (vw << op.d1) & op.mask
		case opAnd:
			vw |= (vw << op.d1) & (vw << op.d2) & op.mask
		case opOr:
			vw |= ((vw << op.d1) | (vw << op.d2)) & op.mask
		case opNot:
			vw |= ^(vw << op.d1) & op.mask
		}
	}
	return vw
}

// kernelCache memoizes compiled kernels across Program instances by
// content fingerprint: one serving round materializes the same fused
// program several times over — once at the coordinator's builder and once
// per site that decodes it off the wire — and a standing subscription set
// re-materializes it every round. Sites already key their triplet caches
// by the same fingerprint, so correctness already rides on its
// collision-freedom. Bounded: past the cap new programs compile fresh
// (steady-state serving cycles a handful of standing programs).
var (
	kernelCache     sync.Map // fingerprint -> *LaneKernel
	kernelCacheSize atomic.Int64
)

const kernelCacheCap = 512

// Kernel returns the program's fused lane kernel, compiling and caching it
// on first use. Batch entry points (CompileBatch, BatchBuilder.Program)
// compile it eagerly so serving rounds never pay the compile inside the
// first fragment's traversal.
func (p *Program) Kernel() *LaneKernel {
	if k := p.kern.Load(); k != nil {
		return k
	}
	fp := p.Fingerprint()
	if v, ok := kernelCache.Load(fp); ok {
		k := v.(*LaneKernel)
		if k.lanes == len(p.Subs) { // belt over the fingerprint's braces
			p.kern.Store(k) // racing stores all hold equivalent kernels
			return k
		}
	}
	k := CompileKernel(p)
	if !p.kern.CompareAndSwap(nil, k) {
		return p.kern.Load()
	}
	if kernelCacheSize.Load() < kernelCacheCap {
		if _, loaded := kernelCache.LoadOrStore(fp, k); !loaded {
			kernelCacheSize.Add(1)
		}
	}
	return k
}

// CompileKernel builds the word-parallel plan for prog. Every valid
// program compiles; cost is O(|QList| + distinct op groups).
func CompileKernel(prog *Program) *LaneKernel {
	n := len(prog.Subs)
	words := (n + 63) / 64 // 0 lanes ⇒ 0 words: every op loop is empty
	k := &LaneKernel{lanes: n, words: words, trueMask: make([]uint64, words)}

	// Dependency levels: 0 for lanes reading only the node and the child
	// fold; otherwise one past the deepest same-node operand.
	levels := make([]int32, n)
	level := func(op int32) int32 { return levels[op] }
	for i, s := range prog.Subs {
		switch s.Kind {
		case KTrue, KLabel, KText, KChild:
			levels[i] = 0
		case KDesc, KNot:
			levels[i] = level(s.A) + 1
		case KFilter:
			if s.B < 0 {
				levels[i] = level(s.A) + 1
			} else {
				levels[i] = maxi32(level(s.A), level(s.B)) + 1
			}
		case KAnd, KOr:
			levels[i] = maxi32(level(s.A), level(s.B)) + 1
		default:
			panic(fmt.Sprintf("xpath: kernel: unknown subquery kind %v", s.Kind))
		}
	}

	// Group structural lanes by (level, op, deltas); self tests by string.
	type groupKey struct {
		level  int32
		kind   opKind
		d1, d2 int32
	}
	groups := make(map[groupKey][]uint64)
	labelMasks := make(map[string][]uint64)
	textMasks := make(map[string][]uint64)
	setBit := func(mask []uint64, i int) []uint64 {
		if mask == nil {
			mask = make([]uint64, words)
		}
		mask[i>>6] |= 1 << (uint(i) & 63)
		return mask
	}
	addGroup := func(lvl int32, kind opKind, d1, d2 int32, i int) {
		gk := groupKey{level: lvl, kind: kind, d1: d1, d2: d2}
		groups[gk] = setBit(groups[gk], i)
	}
	for i, s := range prog.Subs {
		switch s.Kind {
		case KTrue:
			k.trueMask = setBit(k.trueMask, i)
		case KLabel:
			labelMasks[s.Str] = setBit(labelMasks[s.Str], i)
		case KText:
			textMasks[s.Str] = setBit(textMasks[s.Str], i)
		case KChild:
			addGroup(levels[i], opChild, int32(i)-s.A, 0, i)
		case KDesc:
			addGroup(levels[i], opDesc, int32(i)-s.A, 0, i)
		case KFilter:
			if s.B < 0 {
				addGroup(levels[i], opCopy, int32(i)-s.A, 0, i)
			} else {
				addGroup(levels[i], opAnd, int32(i)-s.A, int32(i)-s.B, i)
			}
		case KAnd:
			addGroup(levels[i], opAnd, int32(i)-s.A, int32(i)-s.B, i)
		case KOr:
			addGroup(levels[i], opOr, int32(i)-s.A, int32(i)-s.B, i)
		case KNot:
			addGroup(levels[i], opNot, int32(i)-s.A, 0, i)
		}
	}
	for s, m := range labelMasks {
		k.labels.add(s, m)
	}
	for s, m := range textMasks {
		k.texts.add(s, m)
	}

	// Deterministic op order: by level, then a stable tiebreak. Within a
	// level every op's sources are complete, so the tiebreak is free.
	keys := make([]groupKey, 0, len(groups))
	for gk := range groups {
		keys = append(keys, gk)
	}
	sort.Slice(keys, func(a, b int) bool {
		x, y := keys[a], keys[b]
		if x.level != y.level {
			return x.level < y.level
		}
		if x.kind != y.kind {
			return x.kind < y.kind
		}
		if x.d1 != y.d1 {
			return x.d1 < y.d1
		}
		return x.d2 < y.d2
	})
	if words == 1 {
		k.ops1 = make([]laneOp1, len(keys))
		for j, gk := range keys {
			k.ops1[j] = laneOp1{kind: gk.kind, d1: uint8(gk.d1), d2: uint8(gk.d2), mask: groups[gk][0]}
		}
		for _, op := range k.ops1 {
			switch op.kind {
			case opChild:
				continue // reads CV, which is zero at a leaf
			case opDesc:
				op.kind = opCopy // shift(0|v) = shift(v)
			}
			k.ops1Leaf = append(k.ops1Leaf, op)
		}
	} else {
		k.ops = make([]laneOp, len(keys))
		for j, gk := range keys {
			full := groups[gk]
			op := laneOp{kind: gk.kind, d1: gk.d1, d2: gk.d2}
			for w, bits := range full {
				if bits != 0 {
					op.idx = append(op.idx, int32(w))
					op.mask = append(op.mask, bits)
				}
			}
			k.ops[j] = op
		}
		for _, op := range k.ops {
			switch op.kind {
			case opChild:
				continue // reads CV, which is zero at a leaf
			case opDesc:
				op.kind = opCopy // shift(0|v) = shift(v)
			}
			k.opsLeaf = append(k.opsLeaf, op)
		}
	}
	return k
}

// EvalConst evaluates the whole QList at one constant-plane node: v (which
// must arrive zeroed and is fully written), given the node's label and
// text and the folded child vectors cv/dv. On return dv additionally
// includes v (line 17 of Procedure bottomUp for every lane at once). It is
// the word-parallel replacement for the per-lane loop and must agree with
// it entry-wise on every input — the FuzzFusedBottomUp target pins this.
func (k *LaneKernel) EvalConst(v, cv, dv boolexpr.BitVec, label, text string) {
	if k.words == 1 {
		vw := k.EvalConstWord(cv[0], dv[0], label, text)
		v[0] = vw
		dv[0] |= vw
		return
	}
	for w, m := range k.trueMask {
		v[w] |= m
	}
	if m := k.labels.lookup(label); m != nil {
		for w, bits := range m {
			v[w] |= bits
		}
	}
	if m := k.texts.lookup(text); m != nil {
		for w, bits := range m {
			v[w] |= bits
		}
	}
	for i := range k.ops {
		op := &k.ops[i]
		for j, w32 := range op.idx {
			w, m := int(w32), op.mask[j]
			switch op.kind {
			case opChild:
				v[w] |= boolexpr.ShiftWord(cv, w, op.d1) & m
			case opDesc:
				v[w] |= boolexpr.ShiftWordOr(dv, v, w, op.d1) & m
			case opCopy:
				v[w] |= boolexpr.ShiftWord(v, w, op.d1) & m
			case opAnd:
				v[w] |= boolexpr.ShiftWord(v, w, op.d1) & boolexpr.ShiftWord(v, w, op.d2) & m
			case opOr:
				v[w] |= (boolexpr.ShiftWord(v, w, op.d1) | boolexpr.ShiftWord(v, w, op.d2)) & m
			case opNot:
				v[w] |= ^boolexpr.ShiftWord(v, w, op.d1) & m
			}
		}
	}
	for w := range v {
		dv[w] |= v[w]
	}
}

// EvalLeaf is EvalConst for a childless node: CV and DV are zero by
// construction, so the precompiled leaf plan applies and v (which must
// arrive zeroed) ends holding the leaf's V — which is also its outgoing DV
// (line 17 with dv = 0). Works for any word count.
func (k *LaneKernel) EvalLeaf(v boolexpr.BitVec, label, text string) {
	if k.words == 1 {
		v[0] = k.EvalLeafWord(label, text)
		return
	}
	for w, m := range k.trueMask {
		v[w] |= m
	}
	if m := k.labels.lookup(label); m != nil {
		for w, bits := range m {
			v[w] |= bits
		}
	}
	if m := k.texts.lookup(text); m != nil {
		for w, bits := range m {
			v[w] |= bits
		}
	}
	for i := range k.opsLeaf {
		op := &k.opsLeaf[i]
		for j, w32 := range op.idx {
			w, m := int(w32), op.mask[j]
			switch op.kind {
			case opCopy:
				v[w] |= boolexpr.ShiftWord(v, w, op.d1) & m
			case opAnd:
				v[w] |= boolexpr.ShiftWord(v, w, op.d1) & boolexpr.ShiftWord(v, w, op.d2) & m
			case opOr:
				v[w] |= (boolexpr.ShiftWord(v, w, op.d1) | boolexpr.ShiftWord(v, w, op.d2)) & m
			case opNot:
				v[w] |= ^boolexpr.ShiftWord(v, w, op.d1) & m
			}
		}
	}
}

// String renders the plan for tests and debugging: one line per op group,
// self-test tables summarized.
func (k *LaneKernel) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "kernel: %d lanes, %d words, %d ops\n", k.lanes, k.words, k.Ops())
	names := [...]string{"child", "desc", "copy", "and", "or", "not"}
	if k.words == 1 {
		for _, op := range k.ops1 {
			fmt.Fprintf(&b, "  %-5s d1=%-3d d2=%-3d mask=%016x\n", names[op.kind], op.d1, op.d2, op.mask)
		}
	} else {
		for _, op := range k.ops {
			fmt.Fprintf(&b, "  %-5s d1=%-3d d2=%-3d words=%d\n", names[op.kind], op.d1, op.d2, len(op.idx))
		}
	}
	return b.String()
}

func maxi32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

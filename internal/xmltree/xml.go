package xmltree

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// VirtualElem is the element name used to round-trip virtual nodes through
// textual XML; its "id" attribute carries the fragment ID. It is namespaced
// with a dot so it cannot collide with ordinary labels produced by the
// workload generators.
const VirtualElem = "parbox.fragment"

// ErrBadXML is wrapped by parse failures.
var ErrBadXML = errors.New("xmltree: malformed document")

// ParseXML reads one XML document from r and returns its root element.
// Character data directly under an element becomes the element's Text
// (surrounding whitespace trimmed); comments and processing instructions are
// skipped; <parbox.fragment id="N"/> elements become virtual nodes.
func ParseXML(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var root *Node
	var stack []*Node
	var texts [][]byte
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadXML, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var n *Node
			if t.Name.Local == VirtualElem {
				id, err := virtualID(t)
				if err != nil {
					return nil, err
				}
				n = NewVirtual(id)
			} else {
				n = &Node{Label: t.Name.Local}
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("%w: multiple root elements", ErrBadXML)
				}
				root = n
			} else {
				stack[len(stack)-1].AppendChild(n)
			}
			stack = append(stack, n)
			texts = append(texts, nil)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("%w: unbalanced end element", ErrBadXML)
			}
			n := stack[len(stack)-1]
			n.Text = strings.TrimSpace(string(texts[len(texts)-1]))
			if n.Virtual && n.Text != "" {
				return nil, fmt.Errorf("%w: virtual node with text content", ErrBadXML)
			}
			if n.Virtual && len(n.Children) > 0 {
				return nil, fmt.Errorf("%w: virtual node with children", ErrBadXML)
			}
			stack = stack[:len(stack)-1]
			texts = texts[:len(texts)-1]
		case xml.CharData:
			if len(texts) > 0 {
				texts[len(texts)-1] = append(texts[len(texts)-1], t...)
			}
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("%w: unterminated element %q", ErrBadXML, stack[len(stack)-1].Label)
	}
	if root == nil {
		return nil, fmt.Errorf("%w: no root element", ErrBadXML)
	}
	return root, nil
}

func virtualID(t xml.StartElement) (FragmentID, error) {
	for _, a := range t.Attr {
		if a.Name.Local == "id" {
			id, err := strconv.ParseInt(a.Value, 10, 32)
			if err != nil {
				return 0, fmt.Errorf("%w: bad fragment id %q", ErrBadXML, a.Value)
			}
			return FragmentID(id), nil
		}
	}
	return 0, fmt.Errorf("%w: %s without id attribute", ErrBadXML, VirtualElem)
}

// ParseXMLString is ParseXML over a string.
func ParseXMLString(s string) (*Node, error) { return ParseXML(strings.NewReader(s)) }

// WriteXML writes the subtree rooted at n as an XML document. The output
// parses back to an Equal tree via ParseXML.
func WriteXML(w io.Writer, n *Node) error {
	enc := xml.NewEncoder(w)
	if err := writeXMLNode(enc, n); err != nil {
		return err
	}
	return enc.Flush()
}

func writeXMLNode(enc *xml.Encoder, n *Node) error {
	if n.Virtual {
		start := xml.StartElement{
			Name: xml.Name{Local: VirtualElem},
			Attr: []xml.Attr{{Name: xml.Name{Local: "id"}, Value: strconv.FormatInt(int64(n.Frag), 10)}},
		}
		if err := enc.EncodeToken(start); err != nil {
			return err
		}
		return enc.EncodeToken(start.End())
	}
	start := xml.StartElement{Name: xml.Name{Local: n.Label}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.Text != "" {
		if err := enc.EncodeToken(xml.CharData(n.Text)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := writeXMLNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// XMLString renders the subtree as an XML string, for examples and debugging.
func XMLString(n *Node) string {
	var b strings.Builder
	if err := WriteXML(&b, n); err != nil {
		// Writing to a strings.Builder cannot fail; an error here means the
		// encoder itself rejected the tree, which Validate would catch.
		return fmt.Sprintf("<!-- xmltree: %v -->", err)
	}
	return b.String()
}

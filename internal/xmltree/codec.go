package xmltree

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary wire format for shipping whole fragments (what NaiveCentralized
// pays for). Pre-order; per node:
//
//	flags byte (bit0 = virtual)
//	if virtual:  uvarint fragment id
//	else:        uvarint label length + label bytes,
//	             uvarint text length + text bytes
//	uvarint child count, then the children
//
// The format is compact and deterministic, so the byte counts charged to the
// network cost model are reproducible across runs and platforms.

const flagVirtual byte = 1

// ErrBadTree is wrapped by binary decoding failures.
var ErrBadTree = errors.New("xmltree: malformed tree encoding")

// maxChildren bounds the child count a decoder accepts per node, to refuse
// absurd allocations from hostile input.
const maxChildren = 1 << 26

// AppendEncoded appends the binary encoding of the subtree at n to dst.
func AppendEncoded(dst []byte, n *Node) []byte {
	if n.Virtual {
		dst = append(dst, flagVirtual)
		dst = binary.AppendUvarint(dst, uint64(uint32(n.Frag)))
	} else {
		dst = append(dst, 0)
		dst = binary.AppendUvarint(dst, uint64(len(n.Label)))
		dst = append(dst, n.Label...)
		dst = binary.AppendUvarint(dst, uint64(len(n.Text)))
		dst = append(dst, n.Text...)
	}
	dst = binary.AppendUvarint(dst, uint64(len(n.Children)))
	for _, c := range n.Children {
		dst = AppendEncoded(dst, c)
	}
	return dst
}

// Encode returns the binary encoding of the subtree at n. The buffer is
// presized to the exact EncodedSize, so encoding a fragment for shipping
// performs one allocation instead of O(log size) growth copies.
func Encode(n *Node) []byte { return AppendEncoded(make([]byte, 0, EncodedSize(n)), n) }

// EncodedSize returns len(Encode(n)) without building the buffer. The
// cluster layer uses it to charge transfer costs without double-allocating.
func EncodedSize(n *Node) int {
	size := 0
	n.Walk(func(c *Node) {
		size++ // flags
		if c.Virtual {
			size += uvarintLen(uint64(uint32(c.Frag)))
		} else {
			size += uvarintLen(uint64(len(c.Label))) + len(c.Label)
			size += uvarintLen(uint64(len(c.Text))) + len(c.Text)
		}
		size += uvarintLen(uint64(len(c.Children)))
	})
	return size
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// treeDecoder tracks position while decoding. Nodes are carved out of
// slabs instead of allocated one by one: the encoding spends at least four
// bytes per element node (flag, two string lengths, child count), so
// len(buf)/4 bounds the node count and the first slab usually serves the
// whole tree — the decode-side analogue of Encode's EncodedSize presizing.
type treeDecoder struct {
	buf    []byte
	pos    int
	slab   []Node
	labels map[string]string // interned labels; see internStr
}

// decoderSlabMax caps slab size so a small message never provokes a large
// allocation and a huge tree allocates incrementally.
const decoderSlabMax = 4096

func (d *treeDecoder) alloc() *Node {
	if len(d.slab) == 0 {
		est := len(d.buf)/4 + 1
		if est > decoderSlabMax {
			est = decoderSlabMax
		}
		d.slab = make([]Node, est)
	}
	n := &d.slab[0]
	d.slab = d.slab[1:]
	return n
}

func (d *treeDecoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrBadTree, d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *treeDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrBadTree, d.pos)
	}
	d.pos += n
	return v, nil
}

func (d *treeDecoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return "", fmt.Errorf("%w: string length %d exceeds buffer", ErrBadTree, n)
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s, nil
}

// internStr is str for label fields: document labels draw from a small
// repeated alphabet, so interning dedupes the per-node allocations and —
// more importantly — gives every occurrence of a label the same backing
// array, letting downstream string comparisons (kernel self-test memos)
// short-circuit on pointer equality instead of comparing bytes.
func (d *treeDecoder) internStr() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.buf)-d.pos) {
		return "", fmt.Errorf("%w: string length %d exceeds buffer", ErrBadTree, n)
	}
	b := d.buf[d.pos : d.pos+int(n)]
	d.pos += int(n)
	if s, ok := d.labels[string(b)]; ok { // no alloc: map lookup on string(bytes)
		return s, nil
	}
	s := string(b)
	if d.labels == nil {
		d.labels = make(map[string]string, 16)
	}
	d.labels[s] = s
	return s, nil
}

func (d *treeDecoder) node() (*Node, error) {
	flags, err := d.byte()
	if err != nil {
		return nil, err
	}
	n := d.alloc()
	if flags&flagVirtual != 0 {
		n.Virtual = true
		id, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		n.Frag = FragmentID(uint32(id))
	} else {
		if n.Label, err = d.internStr(); err != nil {
			return nil, err
		}
		if n.Text, err = d.str(); err != nil {
			return nil, err
		}
	}
	nc, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if nc > maxChildren || nc > uint64(len(d.buf)-d.pos) {
		return nil, fmt.Errorf("%w: child count %d exceeds remaining input", ErrBadTree, nc)
	}
	if n.Virtual && nc != 0 {
		return nil, fmt.Errorf("%w: virtual node with %d children", ErrBadTree, nc)
	}
	if nc > 0 {
		n.Children = make([]*Node, nc)
		for i := range n.Children {
			c, err := d.node()
			if err != nil {
				return nil, err
			}
			c.Parent = n
			n.Children[i] = c
		}
	}
	return n, nil
}

// Decode decodes a subtree encoded by Encode, consuming the whole buffer.
func Decode(buf []byte) (*Node, error) {
	d := &treeDecoder{buf: buf}
	n, err := d.node()
	if err != nil {
		return nil, err
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadTree, len(d.buf)-d.pos)
	}
	return n, nil
}

// DecodeFrom decodes one subtree from the front of buf, returning the node
// and the number of bytes consumed, so multiple fragments can be shipped in
// one message.
func DecodeFrom(buf []byte) (*Node, int, error) {
	d := &treeDecoder{buf: buf}
	n, err := d.node()
	if err != nil {
		return nil, 0, err
	}
	return n, d.pos, nil
}

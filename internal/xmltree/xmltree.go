// Package xmltree provides the XML document model that every other layer
// builds on: ordered labeled trees whose elements carry text content, plus
// virtual nodes — placeholders that stand for a sub-fragment stored at some
// other site (Section 2.1 of the paper).
//
// The model intentionally matches the paper's semantics for XBL: element
// nodes have a label and text content (the concatenated character data
// directly under the element); the child axis ranges over element children
// only. A virtual node is a leaf from the point of view of its own fragment;
// during query evaluation it contributes Boolean variables instead of
// values.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
)

// FragmentID identifies a fragment of a distributed document. IDs are
// assigned by the fragmentation layer; the root fragment is conventionally 0.
type FragmentID int32

// Node is one node of an XML tree. The zero value is an empty element with
// no label. Nodes form an ordered tree via Children; Parent is maintained by
// the mutation helpers so that incremental updates (Section 5 of the paper)
// can locate the enclosing fragment.
type Node struct {
	// Label is the element tag. Virtual nodes have an empty label.
	Label string
	// Text is the concatenated character data directly under the element,
	// with surrounding whitespace trimmed. The paper's predicate
	// text() = "str" compares against this value.
	Text string
	// Virtual marks the node as a placeholder for sub-fragment Frag.
	Virtual bool
	// Frag is the sub-fragment this virtual node stands for.
	Frag FragmentID
	// Children are the element (and virtual) children in document order.
	Children []*Node
	// Parent is the parent element, nil at a fragment root.
	Parent *Node
}

// NewElement builds an element node and claims the given children.
func NewElement(label, text string, children ...*Node) *Node {
	n := &Node{Label: label, Text: text}
	for _, c := range children {
		n.AppendChild(c)
	}
	return n
}

// NewVirtual builds a virtual placeholder node for fragment id.
func NewVirtual(id FragmentID) *Node {
	return &Node{Virtual: true, Frag: id}
}

// AppendChild appends c as the last child of n and sets c.Parent.
func (n *Node) AppendChild(c *Node) *Node {
	c.Parent = n
	n.Children = append(n.Children, c)
	return c
}

// InsertChild inserts c at position i (0 ≤ i ≤ len(Children)).
func (n *Node) InsertChild(i int, c *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("xmltree: InsertChild index %d out of range [0,%d]", i, len(n.Children)))
	}
	c.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = c
}

// RemoveChild detaches c from n. It reports whether c was a child of n.
func (n *Node) RemoveChild(c *Node) bool {
	for i, k := range n.Children {
		if k == c {
			copy(n.Children[i:], n.Children[i+1:])
			n.Children[len(n.Children)-1] = nil
			n.Children = n.Children[:len(n.Children)-1]
			c.Parent = nil
			return true
		}
	}
	return false
}

// ReplaceChild swaps old for repl in place, preserving document order.
// It reports whether old was found.
func (n *Node) ReplaceChild(old, repl *Node) bool {
	for i, k := range n.Children {
		if k == old {
			repl.Parent = n
			n.Children[i] = repl
			old.Parent = nil
			return true
		}
	}
	return false
}

// Size returns the number of nodes in the subtree rooted at n, virtual
// placeholders included. It is the |T| (resp. |F_j|) of the paper's cost
// expressions.
func (n *Node) Size() int {
	size := 0
	n.Walk(func(*Node) { size++ })
	return size
}

// Depth returns the height of the subtree rooted at n (a leaf has depth 1).
func (n *Node) Depth() int {
	type frame struct {
		n *Node
		d int
	}
	max := 0
	stack := []frame{{n, 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.d > max {
			max = f.d
		}
		for _, c := range f.n.Children {
			stack = append(stack, frame{c, f.d + 1})
		}
	}
	return max
}

// Walk visits every node of the subtree in pre-order, iteratively, so deep
// trees (chain fragmentations) cannot exhaust the goroutine stack.
func (n *Node) Walk(visit func(*Node)) {
	stack := []*Node{n}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(cur)
		// Push children in reverse so they pop in document order.
		for i := len(cur.Children) - 1; i >= 0; i-- {
			stack = append(stack, cur.Children[i])
		}
	}
}

// Clone returns a deep copy of the subtree rooted at n. The copy's Parent is
// nil.
func (n *Node) Clone() *Node {
	c := &Node{Label: n.Label, Text: n.Text, Virtual: n.Virtual, Frag: n.Frag}
	if len(n.Children) > 0 {
		c.Children = make([]*Node, 0, len(n.Children))
		for _, k := range n.Children {
			kc := k.Clone()
			kc.Parent = c
			c.Children = append(c.Children, kc)
		}
	}
	return c
}

// Equal reports deep structural equality of two subtrees (labels, text,
// virtual markers and child order).
func (n *Node) Equal(m *Node) bool {
	if n == nil || m == nil {
		return n == m
	}
	if n.Label != m.Label || n.Text != m.Text || n.Virtual != m.Virtual ||
		n.Frag != m.Frag || len(n.Children) != len(m.Children) {
		return false
	}
	for i := range n.Children {
		if !n.Children[i].Equal(m.Children[i]) {
			return false
		}
	}
	return true
}

// VirtualNodes returns the virtual placeholders in the subtree in document
// order; these identify the sub-fragments of the fragment rooted at n.
func (n *Node) VirtualNodes() []*Node {
	var vs []*Node
	n.Walk(func(c *Node) {
		if c.Virtual {
			vs = append(vs, c)
		}
	})
	return vs
}

// FindFirst returns the first node (pre-order) with the given label, or nil.
func (n *Node) FindFirst(label string) *Node {
	var found *Node
	n.Walk(func(c *Node) {
		if found == nil && !c.Virtual && c.Label == label {
			found = c
		}
	})
	return found
}

// FindAll returns every node with the given label in document order.
func (n *Node) FindAll(label string) []*Node {
	var out []*Node
	n.Walk(func(c *Node) {
		if !c.Virtual && c.Label == label {
			out = append(out, c)
		}
	})
	return out
}

// Stats summarizes a subtree; the experiment harness prints these so that
// EXPERIMENTS.md can record the actual workload sizes.
type Stats struct {
	Nodes    int
	Virtuals int
	Depth    int
	Labels   map[string]int
}

// ComputeStats gathers Stats for the subtree rooted at n.
func ComputeStats(n *Node) Stats {
	s := Stats{Labels: make(map[string]int)}
	n.Walk(func(c *Node) {
		s.Nodes++
		if c.Virtual {
			s.Virtuals++
		} else {
			s.Labels[c.Label]++
		}
	})
	s.Depth = n.Depth()
	return s
}

// String renders a compact single-line form of the subtree, for tests and
// error messages: label{text}(children...) and @N for virtual nodes.
func (n *Node) String() string {
	var b strings.Builder
	n.writeString(&b)
	return b.String()
}

func (n *Node) writeString(b *strings.Builder) {
	if n.Virtual {
		fmt.Fprintf(b, "@%d", n.Frag)
		return
	}
	b.WriteString(n.Label)
	if n.Text != "" {
		b.WriteByte('{')
		b.WriteString(n.Text)
		b.WriteByte('}')
	}
	if len(n.Children) > 0 {
		b.WriteByte('(')
		for i, c := range n.Children {
			if i > 0 {
				b.WriteByte(',')
			}
			c.writeString(b)
		}
		b.WriteByte(')')
	}
}

// SortedLabels returns the distinct element labels of the subtree, sorted;
// workload generators use it to pick query vocabulary deterministically.
func SortedLabels(n *Node) []string {
	set := make(map[string]bool)
	n.Walk(func(c *Node) {
		if !c.Virtual {
			set[c.Label] = true
		}
	})
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural invariants of the subtree: parent pointers are
// consistent, virtual nodes are leaves with empty labels, and no node is
// its own ancestor. It returns the first violation found.
func Validate(root *Node) error {
	seen := make(map[*Node]bool)
	var err error
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if seen[n] {
			err = fmt.Errorf("xmltree: node %q appears twice (cycle or shared subtree)", n.Label)
			return false
		}
		seen[n] = true
		if n.Virtual {
			if len(n.Children) > 0 {
				err = fmt.Errorf("xmltree: virtual node @%d has children", n.Frag)
				return false
			}
			if n.Label != "" {
				err = fmt.Errorf("xmltree: virtual node @%d has label %q", n.Frag, n.Label)
				return false
			}
		}
		for _, c := range n.Children {
			if c.Parent != n {
				err = fmt.Errorf("xmltree: child %q of %q has wrong parent", c.Label, n.Label)
				return false
			}
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(root)
	return err
}

package xmltree

import "math/rand"

// RandomSpec controls RandomTree. The defaults (zero value fixed up by
// RandomTree) produce small bushy trees suitable for property tests.
type RandomSpec struct {
	// Nodes is the exact number of element nodes to generate (≥ 1).
	Nodes int
	// Labels is the vocabulary; a label is drawn uniformly per node.
	Labels []string
	// Texts is the text vocabulary; "" entries leave nodes without text.
	Texts []string
	// MaxChildren bounds the fan-out used while growing the tree.
	MaxChildren int
}

var (
	defaultLabels = []string{"a", "b", "c", "d", "e"}
	defaultTexts  = []string{"", "", "x", "y", "z"}
)

// RandomTree grows a uniformly random ordered tree with exactly spec.Nodes
// element nodes, by attaching each new node under a uniformly chosen
// existing node that still has spare fan-out. It is deterministic in r, so
// property-test failures reproduce from the seed alone.
func RandomTree(r *rand.Rand, spec RandomSpec) *Node {
	if spec.Nodes < 1 {
		spec.Nodes = 1
	}
	if len(spec.Labels) == 0 {
		spec.Labels = defaultLabels
	}
	if len(spec.Texts) == 0 {
		spec.Texts = defaultTexts
	}
	if spec.MaxChildren < 1 {
		spec.MaxChildren = 4
	}
	newNode := func() *Node {
		return &Node{
			Label: spec.Labels[r.Intn(len(spec.Labels))],
			Text:  spec.Texts[r.Intn(len(spec.Texts))],
		}
	}
	root := newNode()
	open := []*Node{root} // nodes with spare fan-out
	for i := 1; i < spec.Nodes; i++ {
		j := r.Intn(len(open))
		parent := open[j]
		c := newNode()
		parent.AppendChild(c)
		open = append(open, c)
		if len(parent.Children) >= spec.MaxChildren {
			open[j] = open[len(open)-1]
			open = open[:len(open)-1]
		}
	}
	return root
}

package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// portfolio builds a miniature of the paper's Fig. 1(b) stock portfolio.
func portfolio() *Node {
	stock := func(code, buy, sell string) *Node {
		return NewElement("stock", "",
			NewElement("code", code),
			NewElement("buy", buy),
			NewElement("sell", sell))
	}
	return NewElement("portfolio", "",
		NewElement("broker", "",
			NewElement("name", "Bache"),
			NewElement("market", "",
				NewElement("name", "NYSE"),
				stock("IBM", "$80", "$78"))),
		NewElement("broker", "",
			NewElement("name", "Merill Lynch"),
			NewElement("market", "",
				NewElement("name", "NASDAQ"),
				stock("GOOG", "$374", "$373"))))
}

func TestBuildAndNavigate(t *testing.T) {
	p := portfolio()
	if got := p.Size(); got != 17 {
		t.Errorf("Size = %d, want 17", got)
	}
	if got := p.Depth(); got != 5 {
		t.Errorf("Depth = %d, want 5", got)
	}
	if n := p.FindFirst("code"); n == nil || n.Text != "IBM" {
		t.Errorf("FindFirst(code) = %v", n)
	}
	if all := p.FindAll("stock"); len(all) != 2 {
		t.Errorf("FindAll(stock) = %d nodes, want 2", len(all))
	}
	if err := Validate(p); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestMutationHelpers(t *testing.T) {
	p := NewElement("r", "")
	a := p.AppendChild(NewElement("a", ""))
	c := NewElement("c", "")
	p.InsertChild(1, c)
	b := NewElement("b", "")
	p.InsertChild(1, b)
	want := []*Node{a, b, c}
	for i, w := range want {
		if p.Children[i] != w {
			t.Fatalf("child %d = %q, want %q", i, p.Children[i].Label, w.Label)
		}
		if w.Parent != p {
			t.Fatalf("child %q has wrong parent", w.Label)
		}
	}
	if !p.RemoveChild(b) {
		t.Fatal("RemoveChild(b) = false")
	}
	if b.Parent != nil {
		t.Error("removed child keeps parent pointer")
	}
	if len(p.Children) != 2 || p.Children[0] != a || p.Children[1] != c {
		t.Errorf("children after removal: %v", p.Children)
	}
	if p.RemoveChild(b) {
		t.Error("RemoveChild of a non-child returned true")
	}
	v := NewVirtual(7)
	if !p.ReplaceChild(c, v) {
		t.Fatal("ReplaceChild failed")
	}
	if p.Children[1] != v || v.Parent != p || c.Parent != nil {
		t.Error("ReplaceChild did not rewire parents")
	}
}

func TestCloneAndEqual(t *testing.T) {
	p := portfolio()
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone is not Equal to original")
	}
	if q.Parent != nil {
		t.Error("clone has a parent")
	}
	// Mutating the clone must not affect the original.
	q.FindFirst("code").Text = "MSFT"
	if p.Equal(q) {
		t.Error("deep copy shares text with the original")
	}
	if err := Validate(q); err != nil {
		t.Errorf("Validate(clone): %v", err)
	}
}

func TestVirtualNodes(t *testing.T) {
	p := portfolio()
	market := p.FindAll("market")[1]
	v := NewVirtual(3)
	market.Parent.ReplaceChild(market, v)
	vs := p.VirtualNodes()
	if len(vs) != 1 || vs[0].Frag != 3 {
		t.Errorf("VirtualNodes = %v", vs)
	}
	if err := Validate(p); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	// Wrong parent pointer.
	p := NewElement("r", "")
	c := NewElement("a", "")
	p.Children = append(p.Children, c) // bypass AppendChild
	if err := Validate(p); err == nil {
		t.Error("Validate missed a wrong parent pointer")
	}
	// Virtual with children.
	v := NewVirtual(1)
	v.Children = append(v.Children, NewElement("x", ""))
	v.Children[0].Parent = v
	if err := Validate(v); err == nil {
		t.Error("Validate missed virtual node with children")
	}
	// Shared subtree.
	p2 := NewElement("r", "")
	shared := NewElement("s", "")
	p2.AppendChild(shared)
	p2.Children = append(p2.Children, shared)
	if err := Validate(p2); err == nil {
		t.Error("Validate missed a shared subtree")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	p := portfolio()
	p.FindAll("market")[1].Parent.ReplaceChild(p.FindAll("market")[1], NewVirtual(5))
	s := XMLString(p)
	got, err := ParseXMLString(s)
	if err != nil {
		t.Fatalf("ParseXMLString(%q): %v", s, err)
	}
	if !got.Equal(p) {
		t.Errorf("XML round trip:\n got %v\nwant %v", got, p)
	}
}

func TestParseXMLWhitespaceAndText(t *testing.T) {
	n, err := ParseXMLString("<a>\n  <b> hello </b>\n  <c/>\n</a>")
	if err != nil {
		t.Fatal(err)
	}
	if n.Text != "" {
		t.Errorf("container text = %q, want empty", n.Text)
	}
	if b := n.FindFirst("b"); b.Text != "hello" {
		t.Errorf("b text = %q, want hello", b.Text)
	}
}

func TestParseXMLErrors(t *testing.T) {
	cases := []string{
		"",
		"<a>",
		"<a></b>",
		"<a/><b/>",
		`<parbox.fragment/>`,
		`<parbox.fragment id="zzz"/>`,
		`<parbox.fragment id="1">text</parbox.fragment>`,
		`<parbox.fragment id="1"><a/></parbox.fragment>`,
	}
	for _, s := range cases {
		if _, err := ParseXMLString(s); err == nil {
			t.Errorf("ParseXMLString(%q) succeeded, want error", s)
		}
	}
}

func TestBinaryCodecRoundTrip(t *testing.T) {
	p := portfolio()
	p.AppendChild(NewVirtual(12))
	enc := Encode(p)
	if len(enc) != EncodedSize(p) {
		t.Errorf("EncodedSize = %d, len(Encode) = %d", EncodedSize(p), len(enc))
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Errorf("binary round trip mismatch:\n got %v\nwant %v", got, p)
	}
	if err := Validate(got); err != nil {
		t.Errorf("decoded tree invalid: %v", err)
	}
}

func TestBinaryDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},                                    // truncated label
		{0, 1},                                 // label length 1 but no bytes
		{flagVirtual},                          // truncated frag id
		{0, 0, 0, 200, 10},                     // child count exceeds input
		append(Encode(NewElement("a", "")), 9), // trailing byte
	}
	for i, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("case %d: Decode succeeded, want error", i)
		}
	}
}

func TestDecodeFromConcatenated(t *testing.T) {
	a, b := NewElement("a", "1"), NewElement("b", "2", NewElement("c", ""))
	buf := AppendEncoded(AppendEncoded(nil, a), b)
	g1, n1, err := DecodeFrom(buf)
	if err != nil {
		t.Fatal(err)
	}
	g2, n2, err := DecodeFrom(buf[n1:])
	if err != nil {
		t.Fatal(err)
	}
	if n1+n2 != len(buf) {
		t.Errorf("consumed %d+%d of %d bytes", n1, n2, len(buf))
	}
	if !g1.Equal(a) || !g2.Equal(b) {
		t.Error("concatenated decode mismatch")
	}
}

// TestPropCodecsRoundTrip: for random trees, both codecs round-trip and the
// parsed tree validates.
func TestPropCodecsRoundTrip(t *testing.T) {
	f := func(seed int64, sizeRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := RandomTree(r, RandomSpec{Nodes: 1 + int(sizeRaw%64)})
		bin, err := Decode(Encode(n))
		if err != nil || !bin.Equal(n) {
			return false
		}
		xmlTree, err := ParseXMLString(XMLString(n))
		if err != nil || !xmlTree.Equal(n) {
			return false
		}
		return Validate(n) == nil && Validate(bin) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRandomTreeDeterministicAndSized(t *testing.T) {
	spec := RandomSpec{Nodes: 500}
	a := RandomTree(rand.New(rand.NewSource(11)), spec)
	b := RandomTree(rand.New(rand.NewSource(11)), spec)
	if !a.Equal(b) {
		t.Error("RandomTree is not deterministic in the seed")
	}
	if got := a.Size(); got != 500 {
		t.Errorf("Size = %d, want 500", got)
	}
	c := RandomTree(rand.New(rand.NewSource(12)), spec)
	if a.Equal(c) {
		t.Error("different seeds produced identical trees")
	}
}

func TestStatsAndLabels(t *testing.T) {
	p := portfolio()
	s := ComputeStats(p)
	if s.Nodes != 17 || s.Virtuals != 0 || s.Depth != 5 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Labels["stock"] != 2 || s.Labels["name"] != 4 {
		t.Errorf("label counts wrong: %v", s.Labels)
	}
	labels := SortedLabels(p)
	want := []string{"broker", "buy", "code", "market", "name", "portfolio", "sell", "stock"}
	if strings.Join(labels, ",") != strings.Join(want, ",") {
		t.Errorf("SortedLabels = %v", labels)
	}
}

func TestStringForm(t *testing.T) {
	n := NewElement("a", "", NewElement("b", "t"), NewVirtual(4))
	if got, want := n.String(), "a(b{t},@4)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

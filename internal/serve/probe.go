package serve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

// Message kinds of the serving tier.
const (
	// KindProbe is the health probe: an (almost) empty round trip whose
	// only point is that it exercises the same transport path queries
	// use.
	KindProbe = "serve.probe"
	// KindCloneFragment asks a site for an encoded copy of one fragment
	// (the rebalancer's read side).
	KindCloneFragment = "serve.cloneFragment"
	// KindInstallFragment installs a shipped fragment replica at a site
	// (journaled through the durable store and version-bumped by
	// Site.AddFragment, so stale cached triplets cannot survive).
	KindInstallFragment = "serve.installFragment"
)

// ErrBadServeMessage is wrapped by the tier's decoders.
var ErrBadServeMessage = errors.New("serve: bad message")

// RegisterHandlers installs the tier's site-side handlers. Every
// replica site of a failover deployment needs them (the daemon and the
// facade both call this during setup). The tier's control plane is
// exempt from admission control: a saturated site must still answer
// probes (shedding them would read as the site dying, amplifying the
// overload onto its siblings) and still accept rebalancer traffic.
func RegisterHandlers(site *cluster.Site) {
	site.Handle(KindProbe, handleProbe)
	site.Handle(KindCloneFragment, handleCloneFragment)
	site.Handle(KindInstallFragment, handleInstallFragment)
	site.ExemptFromAdmission(KindProbe, KindCloneFragment, KindInstallFragment)
}

func handleProbe(_ context.Context, site *cluster.Site, _ cluster.Request) (cluster.Response, error) {
	return cluster.Response{Payload: []byte(site.ID())}, nil
}

func handleCloneFragment(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	id, err := decodeFragIDReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	fr, ok := site.Fragment(id)
	if !ok {
		return cluster.Response{}, fmt.Errorf("serve: site %s does not store fragment %d", site.ID(), id)
	}
	dst := binary.AppendVarint(nil, int64(int32(fr.Parent)))
	dst = append(dst, xmltree.Encode(fr.Root)...)
	return cluster.Response{Payload: dst}, nil
}

func handleInstallFragment(_ context.Context, site *cluster.Site, req cluster.Request) (cluster.Response, error) {
	id, parent, root, err := decodeInstallReq(req.Payload)
	if err != nil {
		return cluster.Response{}, err
	}
	site.AddFragment(&frag.Fragment{ID: id, Parent: parent, Root: root})
	return cluster.Response{}, nil
}

func encodeFragIDReq(id xmltree.FragmentID) []byte {
	return binary.AppendUvarint(nil, uint64(uint32(id)))
}

func decodeFragIDReq(buf []byte) (xmltree.FragmentID, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 || n != len(buf) {
		return 0, fmt.Errorf("%w: bad fragment id", ErrBadServeMessage)
	}
	return xmltree.FragmentID(uint32(v)), nil
}

func encodeInstallReq(id, parent xmltree.FragmentID, root *xmltree.Node) []byte {
	dst := binary.AppendUvarint(nil, uint64(uint32(id)))
	dst = binary.AppendVarint(dst, int64(int32(parent)))
	return append(dst, xmltree.Encode(root)...)
}

func decodeInstallReq(buf []byte) (id, parent xmltree.FragmentID, root *xmltree.Node, err error) {
	idRaw, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad install id", ErrBadServeMessage)
	}
	buf = buf[n:]
	parentRaw, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad install parent", ErrBadServeMessage)
	}
	root, err = xmltree.Decode(buf[n:])
	if err != nil {
		return 0, 0, nil, err
	}
	return xmltree.FragmentID(uint32(idRaw)), xmltree.FragmentID(int32(parentRaw)), root, nil
}

// Recheck implements core.Tier: a synchronous probe sweep, used by the
// engine between round-level retries and by ProbeNow-driven callers
// after scripted outages.
func (t *Tier) Recheck(ctx context.Context) { t.ProbeNow(ctx) }

// ProbeNow probes every site of the replica map once, concurrently, and
// feeds the outcomes through the health state machine. The coordinator
// itself is skipped: its calls are local and cannot fail at the
// transport. Explicit sweeps always probe everything — the per-site
// backoff schedule only thins the background prober (probeSweep) — but
// their outcomes still feed it, so a revived site found by Recheck
// returns to full-rate background probing immediately.
func (t *Tier) ProbeNow(ctx context.Context) { t.sweep(ctx, false) }

// probeSweep is the background prober's pass: like ProbeNow, except
// sites whose probes keep failing are re-probed at exponentially
// backed-off (jittered) intervals instead of every tick — a dead site
// does not deserve a full-rate probe stream while it is down.
func (t *Tier) probeSweep(ctx context.Context) { t.sweep(ctx, true) }

func (t *Tier) sweep(ctx context.Context, honorSchedule bool) {
	sites := t.sites()
	now := time.Now()
	due := sites[:0:0]
	t.probeMu.Lock()
	for _, site := range sites {
		if site == t.coord {
			continue
		}
		if honorSchedule {
			if sc := t.probeSched[site]; sc != nil && now.Before(sc.next) {
				continue
			}
		}
		due = append(due, site)
	}
	t.probeMu.Unlock()
	done := make(chan struct{}, len(due))
	for _, site := range due {
		go func(site frag.SiteID) {
			defer func() { done <- struct{}{} }()
			if evidence, err := t.probeOne(ctx, site); evidence {
				t.reschedule(site, err)
			}
		}(site)
	}
	for range due {
		<-done
	}
}

// probeSchedule is one failing site's backed-off background probing
// state.
type probeSchedule struct {
	bo   *backoff.Retry
	next time.Time
}

// reschedule updates a site's background probing cadence from a probe
// outcome: failures push the next probe out (exponential, jittered,
// capped); a success clears the schedule back to every-tick.
func (t *Tier) reschedule(site frag.SiteID, err error) {
	t.probeMu.Lock()
	defer t.probeMu.Unlock()
	if err == nil {
		delete(t.probeSched, site)
		return
	}
	sc := t.probeSched[site]
	if sc == nil {
		if t.probeSched == nil {
			t.probeSched = make(map[frag.SiteID]*probeSchedule)
		}
		sc = &probeSchedule{bo: backoff.New(backoff.Policy{
			Base:   t.opt.ProbeInterval,
			Max:    16 * t.opt.ProbeInterval,
			Budget: -1, // probing never gives up; it just slows down
		})}
		t.probeSched[site] = sc
	}
	d, _ := sc.bo.Next(0)
	sc.next = time.Now().Add(d)
}

// probeOne probes a single site and feeds the health state machine.
// evidence is false when the outcome says nothing about the site (the
// caller abandoned the sweep).
func (t *Tier) probeOne(ctx context.Context, site frag.SiteID) (evidence bool, err error) {
	pctx, cancel := context.WithTimeout(ctx, t.opt.ProbeTimeout)
	defer cancel()
	start := time.Now()
	_, _, err = t.tr.Call(pctx, t.coord, site, cluster.Request{Kind: KindProbe})
	rtt := time.Since(start)
	t.probes.Add(1)
	if err != nil {
		// The caller abandoning the sweep is not evidence about the site.
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			return false, err
		}
		t.probeFails.Add(1)
		t.health.result(site, rtt, err)
		return true, err
	}
	t.health.result(site, rtt, nil)
	return true, nil
}

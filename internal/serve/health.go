package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/frag"
	"repro/internal/obs"
)

// State is a site's health as the tier sees it.
type State int

const (
	// Up: the site serves normally and is a first-choice replica.
	Up State = iota
	// Suspect: at least one recent failure (or a recovery in progress).
	// Suspect replicas stay eligible — hysteresis, so a single timeout
	// does not flap a site out of rotation — but lose ties against Up
	// ones.
	Suspect
	// Down: enough consecutive failures that the router excludes the
	// site entirely until a probe succeeds.
	Down
)

func (s State) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	default:
		return "unknown"
	}
}

// Options tunes the tier's health state machine and prober.
type Options struct {
	// DownAfter is the number of consecutive failures that takes a site
	// from Up all the way to Down (the first failure only suspects it).
	// Default 3.
	DownAfter int
	// UpAfter is the number of consecutive successes that promotes a
	// Suspect site back to Up. Default 2.
	UpAfter int
	// ProbeInterval is the background prober's cadence; 0 uses the
	// default (250ms), negative disables the background prober (health
	// then moves on passive signals and explicit Recheck calls only).
	ProbeInterval time.Duration
	// ProbeTimeout bounds each probe call. Default 2s.
	ProbeTimeout time.Duration
	// EWMAAlpha is the weight of the newest RTT sample in the per-site
	// latency average the routing score uses. Default 0.3.
	EWMAAlpha float64
	// Hedging enables speculative duplicates: a pure scatter job on a
	// fragment set with a second live replica races a copy on the
	// next-best site once the primary has been quiet past the hedge
	// delay. First answer wins; the loser is cancelled. Default off.
	Hedging bool
	// HedgeDelay fixes the hedge timer's arm. 0 (the default) arms it
	// dynamically at the primary site's observed latency p95 — and until
	// the primary has been observed at least once, declines to hedge.
	HedgeDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.DownAfter <= 0 {
		o.DownAfter = 3
	}
	if o.UpAfter <= 0 {
		o.UpAfter = 2
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = 2 * time.Second
	}
	if o.EWMAAlpha <= 0 || o.EWMAAlpha > 1 {
		o.EWMAAlpha = 0.3
	}
	return o
}

// SiteStatus is one site's health snapshot (Tier.Health).
type SiteStatus struct {
	State State
	// EWMA is the smoothed observed round-trip/service time.
	EWMA time.Duration
	// P95 is the observed round-trip p95 (histogram quantile once
	// enough samples exist, mean+2σ before that; 0 = never observed).
	P95 time.Duration
	// Inflight is the number of engine calls currently outstanding.
	Inflight int64
	// Fails counts failures observed over the site's lifetime.
	Fails int64
	// Transitions counts health-state changes (flap indicator).
	Transitions int64
}

type siteHealth struct {
	state     State
	fails     int // consecutive
	oks       int // consecutive
	ewmaNanos float64
	// ewmaVarNanos2 is the exponentially-weighted variance of the RTT
	// samples (ns²), tracked alongside the mean as a cold-start p95
	// estimate (mean + 2σ) until the histogram has enough samples.
	ewmaVarNanos2 float64
	// hist is the full log-bucketed RTT distribution; once it holds
	// histP95MinSamples samples the hedge delay arms from its real p95
	// instead of the normal-tail approximation.
	hist        obs.HistSnapshot
	inflight    int64
	totalFails  int64
	transitions int64
}

// histP95MinSamples gates the switch from the mean+2σ estimate to the
// histogram p95: below it a couple of outliers would swing the
// quantile wildly.
const histP95MinSamples = 16

// healthTracker is the tier's health state machine; safe for concurrent
// use. Signals come from three places: the Started/Finished bracket
// around every engine call (passive), probes (active), and the metrics
// EWMA seed (see Tier.score).
type healthTracker struct {
	mu    sync.Mutex
	opt   Options
	sites map[frag.SiteID]*siteHealth
}

func newHealthTracker(opt Options, sites []frag.SiteID) *healthTracker {
	h := &healthTracker{opt: opt, sites: make(map[frag.SiteID]*siteHealth, len(sites))}
	for _, s := range sites {
		h.sites[s] = &siteHealth{}
	}
	return h
}

func (h *healthTracker) site(id frag.SiteID) *siteHealth {
	s, ok := h.sites[id]
	if !ok {
		s = &siteHealth{}
		h.sites[id] = s
	}
	return s
}

func (h *healthTracker) started(id frag.SiteID) {
	h.mu.Lock()
	h.site(id).inflight++
	h.mu.Unlock()
}

func (h *healthTracker) finished(id frag.SiteID, rtt time.Duration, err error) {
	h.mu.Lock()
	h.site(id).inflight--
	h.mu.Unlock()
	// A cancelled call is the round's choice (a sibling failed first, or
	// a hedge lost its race), not evidence about this site.
	if err != nil && errors.Is(err, context.Canceled) {
		return
	}
	h.result(id, rtt, err)
}

// result feeds one observation — success or failure — through the state
// machine. Used by both passive signals (finished) and probes.
func (h *healthTracker) result(id frag.SiteID, rtt time.Duration, err error) {
	// An admission shed — seen by a query or a probe — is neutral: the
	// site answered, so it is alive, just saturated; marking it Suspect
	// would push the router's load onto its siblings precisely when
	// shedding asks for the opposite.
	if err != nil && errors.Is(err, cluster.ErrOverloaded) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.site(id)
	if err == nil {
		s.fails = 0
		s.oks++
		if a := h.opt.EWMAAlpha; s.ewmaNanos == 0 {
			s.ewmaNanos = float64(rtt)
		} else {
			diff := float64(rtt) - s.ewmaNanos
			s.ewmaNanos += a * diff
			s.ewmaVarNanos2 = (1 - a) * (s.ewmaVarNanos2 + a*diff*diff)
		}
		s.hist.Observe(rtt.Nanoseconds())
		switch s.state {
		case Down:
			// One success is not full trust: Down goes through Suspect.
			s.state = Suspect
			s.transitions++
			s.oks = 1
		case Suspect:
			if s.oks >= h.opt.UpAfter {
				s.state = Up
				s.transitions++
			}
		}
		return
	}
	s.oks = 0
	s.fails++
	s.totalFails++
	switch s.state {
	case Up:
		s.state = Suspect
		s.transitions++
	case Suspect:
		if s.fails >= h.opt.DownAfter {
			s.state = Down
			s.transitions++
		}
	}
}

func (h *healthTracker) state(id frag.SiteID) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.site(id).state
}

// load returns the routing-score inputs of a site: its smoothed latency
// (0 = never observed) and current in-flight count.
func (h *healthTracker) load(id frag.SiteID) (ewmaNanos float64, inflight int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.site(id)
	return s.ewmaNanos, s.inflight
}

// floorSample feeds a latency *floor* observation: the site was seen to
// take at least rtt (a hedge raced it and won, so its true latency is
// unknown but no smaller). It moves the EWMA/variance like a sample —
// but only upward, and without touching the consecutive-ok/fail state
// machine: losing a hedge race is slowness evidence, not failure
// evidence. Without this, a replica whose calls always lose hedges is
// always cancelled, never observed, and keeps scoring as average.
func (h *healthTracker) floorSample(id frag.SiteID, rtt time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.site(id)
	if float64(rtt) <= s.ewmaNanos {
		return
	}
	if s.ewmaNanos == 0 {
		s.ewmaNanos = float64(rtt)
		return
	}
	a := h.opt.EWMAAlpha
	diff := float64(rtt) - s.ewmaNanos
	s.ewmaNanos += a * diff
	s.ewmaVarNanos2 = (1 - a) * (s.ewmaVarNanos2 + a*diff*diff)
	// A floor is still a real "at least this slow" observation — it
	// belongs in the distribution the hedge p95 arms from.
	s.hist.Observe(rtt.Nanoseconds())
}

// p95 estimates the site's latency 95th percentile; 0 when the site
// was never observed. With enough samples the real histogram quantile
// is used; before that, the smoothed mean + 2σ (exact for a normal
// tail, a serviceable hedge-timer arm for any) covers the cold start.
func (h *healthTracker) p95(id frag.SiteID) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.site(id)
	if s.hist.Count >= histP95MinSamples {
		return time.Duration(s.hist.Quantile(0.95))
	}
	if s.ewmaNanos == 0 {
		return 0
	}
	return time.Duration(s.ewmaNanos + 2*math.Sqrt(s.ewmaVarNanos2))
}

func (h *healthTracker) snapshot() map[frag.SiteID]SiteStatus {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[frag.SiteID]SiteStatus, len(h.sites))
	for id, s := range h.sites {
		p95 := time.Duration(0)
		if s.hist.Count >= histP95MinSamples {
			p95 = time.Duration(s.hist.Quantile(0.95))
		} else if s.ewmaNanos != 0 {
			p95 = time.Duration(s.ewmaNanos + 2*math.Sqrt(s.ewmaVarNanos2))
		}
		out[id] = SiteStatus{
			State:       s.state,
			EWMA:        time.Duration(s.ewmaNanos),
			P95:         p95,
			Inflight:    s.inflight,
			Fails:       s.totalFails,
			Transitions: s.transitions,
		}
	}
	return out
}

package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

var errBoom = errors.New("boom")

func tracker(opt Options, sites ...frag.SiteID) *healthTracker {
	return newHealthTracker(opt.withDefaults(), sites)
}

func TestHealthStateMachine(t *testing.T) {
	h := tracker(Options{}, "A") // defaults: DownAfter 3, UpAfter 2

	if got := h.state("A"); got != Up {
		t.Fatalf("initial state %v, want up", got)
	}
	// First failure only suspects; Down takes DownAfter consecutive ones.
	h.result("A", 0, errBoom)
	if got := h.state("A"); got != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", got)
	}
	h.result("A", 0, errBoom)
	if got := h.state("A"); got != Suspect {
		t.Fatalf("after 2 failures: %v, want suspect", got)
	}
	h.result("A", 0, errBoom)
	if got := h.state("A"); got != Down {
		t.Fatalf("after 3 failures: %v, want down", got)
	}
	// One success is not full trust: Down goes through Suspect, and only
	// UpAfter consecutive successes promote back to Up.
	h.result("A", time.Millisecond, nil)
	if got := h.state("A"); got != Suspect {
		t.Fatalf("after revival probe: %v, want suspect", got)
	}
	h.result("A", time.Millisecond, nil)
	if got := h.state("A"); got != Up {
		t.Fatalf("after second success: %v, want up", got)
	}

	st := h.snapshot()["A"]
	if st.Fails != 3 {
		t.Errorf("lifetime fails = %d, want 3", st.Fails)
	}
	// Up->Suspect, Suspect->Down, Down->Suspect, Suspect->Up.
	if st.Transitions != 4 {
		t.Errorf("transitions = %d, want 4", st.Transitions)
	}
}

func TestHealthSuccessResetsFailureStreak(t *testing.T) {
	h := tracker(Options{}, "A")
	// fail, fail, success, fail, fail: never DownAfter(3) consecutive.
	h.result("A", 0, errBoom)
	h.result("A", 0, errBoom)
	h.result("A", time.Millisecond, nil)
	h.result("A", 0, errBoom)
	h.result("A", 0, errBoom)
	if got := h.state("A"); got != Suspect {
		t.Fatalf("state %v, want suspect (streak was broken)", got)
	}
}

func TestHealthCanceledIsNeutral(t *testing.T) {
	h := tracker(Options{}, "A")
	h.started("A")
	// A round cancelling its siblings says nothing about the site.
	h.finished("A", 0, context.Canceled)
	if got := h.state("A"); got != Up {
		t.Fatalf("state after canceled call: %v, want up", got)
	}
	if st := h.snapshot()["A"]; st.Fails != 0 || st.Inflight != 0 {
		t.Fatalf("canceled call counted: %+v", st)
	}
	// A deadline, by contrast, is evidence.
	h.started("A")
	h.finished("A", 0, context.DeadlineExceeded)
	if got := h.state("A"); got != Suspect {
		t.Fatalf("state after deadline: %v, want suspect", got)
	}
}

func TestHealthInflightBracket(t *testing.T) {
	h := tracker(Options{}, "A")
	h.started("A")
	h.started("A")
	if st := h.snapshot()["A"]; st.Inflight != 2 {
		t.Fatalf("inflight = %d, want 2", st.Inflight)
	}
	h.finished("A", time.Millisecond, nil)
	if st := h.snapshot()["A"]; st.Inflight != 1 {
		t.Fatalf("inflight = %d, want 1", st.Inflight)
	}
}

// routingTier builds a transportless tier for planAssign/Reassign tests
// (routing never touches the transport).
func routingTier(replicas core.ReplicaMap) *Tier {
	return NewTier(nil, "A", nil, replicas, Options{ProbeInterval: -1})
}

func TestPlanAssignSpreadsLoad(t *testing.T) {
	// Two fragments, identical replica sets, no observations: the planned-
	// load term must spread them instead of stacking both on one site.
	tier := routingTier(core.ReplicaMap{
		1: {"A", "B"},
		2: {"A", "B"},
	})
	assign, err := tier.planAssign(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[1] != "A" || assign[2] != "B" {
		t.Fatalf("assign = %v, want 1->A (tie-break) and 2->B (load)", assign)
	}
}

func TestPlanAssignPrefersLowLatency(t *testing.T) {
	tier := routingTier(core.ReplicaMap{1: {"A", "B"}})
	tier.health.result("A", 10*time.Millisecond, nil)
	tier.health.result("B", time.Millisecond, nil)
	assign, err := tier.planAssign(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[1] != "B" {
		t.Fatalf("assign = %v, want the faster replica B", assign)
	}
}

func TestPlanAssignUpBeatsSuspect(t *testing.T) {
	tier := routingTier(core.ReplicaMap{1: {"A", "B"}})
	// A is fast but Suspect; B is slow but Up. State outranks score.
	tier.health.result("A", time.Microsecond, nil)
	tier.health.result("A", time.Microsecond, nil)
	tier.health.result("A", 0, errBoom)
	tier.health.result("B", 50*time.Millisecond, nil)
	if got := tier.health.state("A"); got != Suspect {
		t.Fatalf("setup: A is %v, want suspect", got)
	}
	assign, err := tier.planAssign(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if assign[1] != "B" {
		t.Fatalf("assign = %v, want Up site B over Suspect A", assign)
	}
}

func TestPlanAssignSkipsDownAndExcluded(t *testing.T) {
	tier := routingTier(core.ReplicaMap{1: {"A", "B", "C"}})
	for i := 0; i < 3; i++ {
		tier.health.result("A", 0, errBoom)
	}
	if got := tier.health.state("A"); got != Down {
		t.Fatalf("setup: A is %v, want down", got)
	}
	assign, err := tier.planAssign(nil, map[frag.SiteID]bool{"B": true})
	if err != nil {
		t.Fatal(err)
	}
	if assign[1] != "C" {
		t.Fatalf("assign = %v, want C (A down, B excluded)", assign)
	}
}

func TestPlanAssignFragmentUnavailable(t *testing.T) {
	tier := routingTier(core.ReplicaMap{1: {"A", "B"}})
	_, err := tier.planAssign([]xmltree.FragmentID{1}, map[frag.SiteID]bool{"A": true, "B": true})
	if !errors.Is(err, core.ErrFragmentUnavailable) {
		t.Fatalf("every replica excluded: err = %v, want ErrFragmentUnavailable", err)
	}
	_, err = tier.planAssign([]xmltree.FragmentID{99}, nil)
	if !errors.Is(err, core.ErrFragmentUnavailable) {
		t.Fatalf("unknown fragment: err = %v, want ErrFragmentUnavailable", err)
	}
}

func TestReassignGroupsBySite(t *testing.T) {
	tier := routingTier(core.ReplicaMap{
		1: {"A", "B"},
		2: {"A", "B"},
		3: {"A", "B"},
	})
	placement, err := tier.Reassign([]xmltree.FragmentID{1, 2, 3}, map[frag.SiteID]bool{"A": true})
	if err != nil {
		t.Fatal(err)
	}
	if len(placement) != 1 || len(placement["B"]) != 3 {
		t.Fatalf("placement = %v, want all three fragments on B", placement)
	}
	if got := tier.Stats().Reassigns; got != 1 {
		t.Fatalf("reassign counter = %d, want 1", got)
	}
}

type fakeMetrics map[frag.SiteID]cluster.SiteMetrics

func (m fakeMetrics) Snapshot() map[frag.SiteID]cluster.SiteMetrics {
	out := make(map[frag.SiteID]cluster.SiteMetrics, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// errTransport fails every call: a migration reaching the wire is
// observable as errBoom.
type errTransport struct{}

func (errTransport) Call(context.Context, frag.SiteID, frag.SiteID, cluster.Request) (cluster.Response, cluster.CallCost, error) {
	return cluster.Response{}, cluster.CallCost{}, errBoom
}

// rebalanceTier builds a tier whose replica map leaves pickMigration a
// candidate (a fragment on B but not on A) over a transport that fails
// every call: the threshold tests below must decline BEFORE any
// migration traffic.
func rebalanceTier(m fakeMetrics) *Tier {
	tier := NewTier(errTransport{}, "A", nil, core.ReplicaMap{
		1: {"A", "B"},
		2: {"B"},
	}, Options{ProbeInterval: -1})
	tier.AttachMetrics(m)
	tier.StartRebalancer(RebalanceOptions{MinGap: 8, HotRatio: 1.5})
	return tier
}

func TestRebalanceDeclinesSmallGap(t *testing.T) {
	m := fakeMetrics{"A": {Visits: 0}, "B": {Visits: 7}} // gap 7 < MinGap 8
	moved, err := rebalanceTier(m).RebalanceOnce(context.Background())
	if err != nil || moved != 0 {
		t.Fatalf("moved=%d err=%v, want a declined pass", moved, err)
	}
}

func TestRebalanceDeclinesLowRatio(t *testing.T) {
	m := fakeMetrics{"A": {Visits: 100}, "B": {Visits: 130}} // 1.3x < 1.5x
	moved, err := rebalanceTier(m).RebalanceOnce(context.Background())
	if err != nil || moved != 0 {
		t.Fatalf("moved=%d err=%v, want a declined pass", moved, err)
	}
}

func TestRebalanceWindowIsDelta(t *testing.T) {
	// A skew cleared in pass 1 must not re-trigger pass 2: each pass sees
	// only the traffic since the previous one.
	m := fakeMetrics{"A": {Visits: 0}, "B": {Visits: 100}}
	tier := rebalanceTier(m)
	ctx := context.Background()
	// Pass 1 would migrate, but there is no transport: it must fail at the
	// clone call, NOT at threshold evaluation.
	if _, err := tier.RebalanceOnce(ctx); err == nil {
		t.Fatal("pass 1 reached migration yet reported success without a transport")
	}
	// Same cumulative counters: the window is empty now, so pass 2
	// declines before touching the (absent) transport.
	moved, err := tier.RebalanceOnce(ctx)
	if err != nil || moved != 0 {
		t.Fatalf("pass 2: moved=%d err=%v, want a declined pass", moved, err)
	}
}

func TestRebalanceNeverMigratesToDownSite(t *testing.T) {
	m := fakeMetrics{"A": {Visits: 0}, "B": {Visits: 100}}
	tier := rebalanceTier(m)
	for i := 0; i < 3; i++ {
		tier.health.result("A", 0, errBoom)
	}
	moved, err := tier.RebalanceOnce(context.Background())
	if err != nil || moved != 0 {
		t.Fatalf("moved=%d err=%v, want a declined pass (cold site down)", moved, err)
	}
}

func TestRebalancePicksLargestExclusiveFragment(t *testing.T) {
	doc := xmltree.NewElement("r", "",
		xmltree.NewElement("small", ""),
		xmltree.NewElement("big", "", xmltree.NewElement("x", ""), xmltree.NewElement("y", "")),
	)
	forest := frag.NewForest(doc)
	small, err := forest.Split(doc.Children[0])
	if err != nil {
		t.Fatal(err)
	}
	big, err := forest.Split(doc.Children[1])
	if err != nil {
		t.Fatal(err)
	}
	tier := NewTier(nil, "A", forest, core.ReplicaMap{
		0:     {"A", "B"}, // on both: not a candidate
		small: {"B"},
		big:   {"B"},
	}, Options{ProbeInterval: -1})
	id, ok := tier.pickMigration("B", "A")
	if !ok || id != big {
		t.Fatalf("pickMigration = %d,%v, want the larger fragment %d", id, ok, big)
	}
}

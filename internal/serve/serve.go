// Package serve is the replica-aware serving tier layered between the
// facade/scheduler and core's scatter/gather engine. Deploy-time
// replication (core.ReplicaMap, Section 8 of the paper) gives every
// fragment several homes; this package decides, per round and per
// failed call, WHICH home serves it:
//
//   - health tracking: per-site up/suspect/down state driven by
//     lightweight probes plus passive signals from every engine call,
//     with hysteresis so a single timeout does not flap a site;
//   - replica routing: each round plans a fresh source tree picking the
//     best live replica of every fragment by a load-balanced score
//     (latency EWMA × in-flight count), replacing the static
//     deploy-time PlanPlacement choice;
//   - in-flight failover: the engine's scatter layer calls Reassign for
//     a failed job, re-placing its fragments on surviving replicas; a
//     fragment with zero live replicas fails the query with
//     core.ErrFragmentUnavailable — answers are exactly correct or
//     loudly absent, never silently partial;
//   - live rebalancing: a background pass migrates hot fragments to
//     underloaded replicas through the ordinary fragment codecs and the
//     durable store, version-bumping so triplet caches invalidate.
package serve

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

// MetricsSource is the slice of cluster.Metrics the tier reads: the
// per-site service-time EWMA seeds routing scores for sites the tier has
// not yet observed directly.
type MetricsSource interface {
	Snapshot() map[frag.SiteID]cluster.SiteMetrics
}

// Tier is the serving tier. It implements core.Tier; attach it with
// Engine.SetTier. Safe for concurrent use.
type Tier struct {
	tr     cluster.Transport
	coord  frag.SiteID
	forest *frag.Forest
	opt    Options

	health  *healthTracker
	metrics MetricsSource

	mu       sync.RWMutex
	replicas core.ReplicaMap

	plans, reassigns, migrations atomic.Int64
	probes, probeFails           atomic.Int64
	hedges                       atomic.Int64

	// probeMu guards the background prober's per-site backoff schedule
	// (failing sites are probed at decaying, not full, rate).
	probeMu    sync.Mutex
	probeSched map[frag.SiteID]*probeSchedule

	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	rb        RebalanceOptions
	rebalance bool

	// lastVisits is the rebalancer's per-site visit baseline: each pass
	// acts on the traffic window since the previous pass.
	lastVisits map[frag.SiteID]int64
}

// NewTier builds a tier over a replicated deployment: tr is the SAME
// transport the engine calls through (probes must see what queries
// see), coord the coordinating site, forest the fragment structure, and
// replicas the deploy-time replica map (copied; the rebalancer mutates
// the tier's own copy).
func NewTier(tr cluster.Transport, coord frag.SiteID, forest *frag.Forest, replicas core.ReplicaMap, opt Options) *Tier {
	rm := make(core.ReplicaMap, len(replicas))
	for id, sites := range replicas {
		rm[id] = append([]frag.SiteID(nil), sites...)
	}
	t := &Tier{
		tr:       tr,
		coord:    coord,
		forest:   forest,
		opt:      opt.withDefaults(),
		replicas: rm,
		stop:     make(chan struct{}),
	}
	t.health = newHealthTracker(t.opt, t.sites())
	return t
}

// AttachMetrics feeds the cluster's accounting into routing scores.
func (t *Tier) AttachMetrics(m MetricsSource) { t.metrics = m }

// sites returns every site appearing in the replica map, sorted.
func (t *Tier) sites() []frag.SiteID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	seen := make(map[frag.SiteID]bool)
	for _, sites := range t.replicas {
		for _, s := range sites {
			seen[s] = true
		}
	}
	out := make([]frag.SiteID, 0, len(seen))
	for s := range seen {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Replicas returns a copy of the current replica map (the rebalancer
// moves entries at runtime).
func (t *Tier) Replicas() core.ReplicaMap {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(core.ReplicaMap, len(t.replicas))
	for id, sites := range t.replicas {
		out[id] = append([]frag.SiteID(nil), sites...)
	}
	return out
}

// Health returns the per-site health snapshot.
func (t *Tier) Health() map[frag.SiteID]SiteStatus { return t.health.snapshot() }

// Stats are the tier's cumulative counters.
type Stats struct {
	// Plans counts full per-round placements, Reassigns in-flight
	// failover re-placements.
	Plans, Reassigns int64
	// Probes/ProbeFailures count active health probes.
	Probes, ProbeFailures int64
	// Migrations counts fragments the rebalancer moved.
	Migrations int64
	// Hedges counts speculative duplicate requests the tier planned
	// (armed timers that fired may be fewer; see core's Report for
	// launched/won counts).
	Hedges int64
}

func (t *Tier) Stats() Stats {
	return Stats{
		Plans:         t.plans.Load(),
		Reassigns:     t.reassigns.Load(),
		Probes:        t.probes.Load(),
		ProbeFailures: t.probeFails.Load(),
		Migrations:    t.migrations.Load(),
		Hedges:        t.hedges.Load(),
	}
}

// Started/Finished implement core.Tier's passive health bracket.
func (t *Tier) Started(site frag.SiteID) { t.health.started(site) }
func (t *Tier) Finished(site frag.SiteID, rtt time.Duration, err error) {
	t.health.finished(site, rtt, err)
}

// PlanRound implements core.Tier: resolve every fragment to its best
// live replica and build the round's source tree.
func (t *Tier) PlanRound() (*frag.SourceTree, error) {
	assign, err := t.planAssign(nil, nil)
	if err != nil {
		return nil, err
	}
	t.plans.Add(1)
	return frag.BuildSourceTree(t.forest, assign)
}

// Reassign implements core.Tier: re-place the given fragments excluding
// the sites that already failed this round.
func (t *Tier) Reassign(ids []xmltree.FragmentID, exclude map[frag.SiteID]bool) (map[frag.SiteID][]xmltree.FragmentID, error) {
	assign, err := t.planAssign(ids, exclude)
	if err != nil {
		return nil, err
	}
	t.reassigns.Add(1)
	out := make(map[frag.SiteID][]xmltree.FragmentID)
	for _, id := range ids {
		site := assign[id]
		out[site] = append(out[site], id)
	}
	for _, frs := range out {
		sort.Slice(frs, func(i, j int) bool { return frs[i] < frs[j] })
	}
	return out, nil
}

// planAssign picks a site for each requested fragment (nil only = every
// fragment in the replica map). Eligible replicas are the non-excluded,
// non-Down ones; Up beats Suspect; among equals the load-balanced score
// decides — smoothed latency × (1 + in-flight + already planned here) —
// with the site ID as the deterministic tie-break. A fragment with no
// eligible replica fails the plan with core.ErrFragmentUnavailable.
func (t *Tier) planAssign(only []xmltree.FragmentID, exclude map[frag.SiteID]bool) (frag.Assignment, error) {
	t.mu.RLock()
	replicas := t.replicas
	ids := only
	if ids == nil {
		ids = make([]xmltree.FragmentID, 0, len(replicas))
		for id := range replicas {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	// Snapshot the replica lists under the lock (the rebalancer mutates
	// the map).
	choice := make(map[xmltree.FragmentID][]frag.SiteID, len(ids))
	for _, id := range ids {
		choice[id] = append([]frag.SiteID(nil), replicas[id]...)
	}
	t.mu.RUnlock()

	base := t.baseScore()
	assign := make(frag.Assignment, len(ids))
	planLoad := make(map[frag.SiteID]int64)
	for _, id := range ids {
		cands := choice[id]
		if len(cands) == 0 {
			return nil, fmt.Errorf("%w: fragment %d is not in the replica map", core.ErrFragmentUnavailable, id)
		}
		var best frag.SiteID
		bestRank := -1
		var bestScore float64
		for _, site := range cands {
			if exclude[site] {
				continue
			}
			st := t.health.state(site)
			if st == Down {
				continue
			}
			rank := 0
			if st == Suspect {
				rank = 1
			}
			score := t.score(site, base, planLoad[site])
			better := bestRank < 0 ||
				rank < bestRank ||
				(rank == bestRank && (score < bestScore || (score == bestScore && site < best)))
			if better {
				best, bestRank, bestScore = site, rank, score
			}
		}
		if bestRank < 0 {
			return nil, fmt.Errorf("%w: fragment %d (replicas %v all down)", core.ErrFragmentUnavailable, id, cands)
		}
		assign[id] = best
		planLoad[best]++
	}
	return assign, nil
}

// baseScore is the latency assumed for sites never observed: the mean of
// the known EWMAs (health first, cluster metrics as seed), or 1ns when
// nothing is known anywhere — then the in-flight/plan-count term alone
// balances the load.
func (t *Tier) baseScore() float64 {
	var sum float64
	var n int
	for _, site := range t.sites() {
		if e, _ := t.health.load(site); e > 0 {
			sum += e
			n++
		}
	}
	if n == 0 && t.metrics != nil {
		for _, sm := range t.metrics.Snapshot() {
			if sm.ServiceEWMANanos > 0 {
				sum += sm.ServiceEWMANanos
				n++
			}
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// score is the load-balanced routing score of one site: smoothed latency
// times one plus its outstanding work (calls in flight plus fragments
// already planned onto it this round). Lower is better.
func (t *Tier) score(site frag.SiteID, base float64, planned int64) float64 {
	ewma, inflight := t.health.load(site)
	if ewma == 0 && t.metrics != nil {
		if sm, ok := t.metrics.Snapshot()[site]; ok && sm.ServiceEWMANanos > 0 {
			ewma = sm.ServiceEWMANanos
		}
	}
	if ewma == 0 {
		ewma = base
	}
	return ewma * float64(1+inflight+planned)
}

// PlanHedge implements core.HedgePlanner: pick the best-scored live
// site besides primary that replicates ALL of ids, and the delay to arm
// the hedge timer with — the fixed Options.HedgeDelay, or (when 0) the
// primary's observed latency p95. Declines when hedging is off, no such
// site exists, or dynamic mode has no p95 yet (a hedge armed on zero
// information would fire instantly and double every call).
func (t *Tier) PlanHedge(primary frag.SiteID, ids []xmltree.FragmentID) (frag.SiteID, time.Duration, bool) {
	if !t.opt.Hedging || len(ids) == 0 {
		return "", 0, false
	}
	delay := t.opt.HedgeDelay
	if delay <= 0 {
		if delay = t.health.p95(primary); delay <= 0 {
			return "", 0, false
		}
	}
	// Candidates: sites holding a replica of every fragment of the job.
	t.mu.RLock()
	var cands map[frag.SiteID]bool
	for _, id := range ids {
		here := make(map[frag.SiteID]bool, len(t.replicas[id]))
		for _, s := range t.replicas[id] {
			if s != primary {
				here[s] = true
			}
		}
		if cands == nil {
			cands = here
			continue
		}
		for s := range cands {
			if !here[s] {
				delete(cands, s)
			}
		}
		if len(cands) == 0 {
			break
		}
	}
	t.mu.RUnlock()

	base := t.baseScore()
	var best frag.SiteID
	bestRank := -1
	var bestScore float64
	for site := range cands {
		st := t.health.state(site)
		if st == Down {
			continue
		}
		rank := 0
		if st == Suspect {
			rank = 1
		}
		score := t.score(site, base, 0)
		better := bestRank < 0 ||
			rank < bestRank ||
			(rank == bestRank && (score < bestScore || (score == bestScore && site < best)))
		if better {
			best, bestRank, bestScore = site, rank, score
		}
	}
	if bestRank < 0 {
		return "", 0, false
	}
	t.hedges.Add(1)
	return best, delay, true
}

// HedgeLost implements core.HedgeLossReporter: the hedge on a job won,
// so its primary demonstrably took at least elapsed. The loser's call is
// cancelled — it never produces an RTT sample of its own — so this floor
// is the router's only way to learn that a hedged-around replica is
// slow; without it the site keeps scoring as average and keeps being
// offered work it always loses.
func (t *Tier) HedgeLost(primary frag.SiteID, elapsed time.Duration) {
	t.health.floorSample(primary, elapsed)
}

// Start launches the background prober (and the rebalancer, when
// configured via StartRebalancer before Start). Stop with Stop.
func (t *Tier) Start() {
	if t.opt.ProbeInterval > 0 {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			ticker := time.NewTicker(t.opt.ProbeInterval)
			defer ticker.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-ticker.C:
					t.probeSweep(context.Background())
				}
			}
		}()
	}
	if t.rebalance && t.rb.Interval > 0 {
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			ticker := time.NewTicker(t.rb.Interval)
			defer ticker.Stop()
			for {
				select {
				case <-t.stop:
					return
				case <-ticker.C:
					t.RebalanceOnce(context.Background())
				}
			}
		}()
	}
}

// Stop terminates the background goroutines and waits for them.
func (t *Tier) Stop() {
	t.stopOnce.Do(func() { close(t.stop) })
	t.wg.Wait()
}

package serve

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/frag"
	"repro/internal/xmltree"
)

// RebalanceOptions tunes the live rebalancer.
type RebalanceOptions struct {
	// Interval is the background pass cadence when the tier is started;
	// <= 0 means manual passes only (RebalanceOnce).
	Interval time.Duration
	// HotRatio: a pass acts only when the busiest site saw more than
	// HotRatio times the traffic of the idlest (default 1.5).
	HotRatio float64
	// MinGap: and at least MinGap more visits (default 8) — tiny windows
	// should not trigger migrations.
	MinGap int64
	// Retire drops the hot site from the migrated fragment's replica
	// list (a true migration; the copy stays on disk but is never routed
	// to). The default keeps both — replica expansion, which only ever
	// widens a fragment's failover options.
	Retire bool
}

func (o RebalanceOptions) withDefaults() RebalanceOptions {
	if o.HotRatio <= 1 {
		o.HotRatio = 1.5
	}
	if o.MinGap <= 0 {
		o.MinGap = 8
	}
	return o
}

// StartRebalancer arms the background rebalancer; call before Start.
// Requires AttachMetrics (the rebalancer watches per-site visit counts).
func (t *Tier) StartRebalancer(opt RebalanceOptions) {
	t.rb = opt.withDefaults()
	t.rebalance = true
}

// RebalanceOnce runs one rebalancing pass over the traffic window since
// the previous pass: find the hottest and coldest live sites, and if the
// skew clears the thresholds, migrate the largest fragment the hot site
// serves exclusively of the cold one. The copy travels through the
// ordinary fragment codecs; Site.AddFragment journals it through the
// durable store and bumps its version, so stale cached triplets cannot
// be mistaken for the new replica's. Returns how many fragments moved
// (0 or 1).
func (t *Tier) RebalanceOnce(ctx context.Context) (int, error) {
	if t.metrics == nil {
		return 0, nil
	}
	rb := t.rb
	if !t.rebalance {
		rb = rb.withDefaults()
	}
	snap := t.metrics.Snapshot()
	sites := t.sites()
	if len(sites) < 2 {
		return 0, nil
	}

	// The traffic window since the last pass.
	t.mu.Lock()
	if t.lastVisits == nil {
		t.lastVisits = make(map[frag.SiteID]int64)
	}
	load := make(map[frag.SiteID]int64, len(sites))
	for _, s := range sites {
		load[s] = snap[s].Visits - t.lastVisits[s]
		t.lastVisits[s] = snap[s].Visits
	}
	t.mu.Unlock()

	var hot, cold frag.SiteID
	first := true
	for _, s := range sites {
		if first {
			hot, cold, first = s, s, false
			continue
		}
		if load[s] > load[hot] {
			hot = s
		}
		// Never migrate TO a dead site.
		if load[s] < load[cold] && t.health.state(s) != Down {
			cold = s
		}
	}
	if hot == cold || t.health.state(cold) == Down {
		return 0, nil
	}
	gap := load[hot] - load[cold]
	denom := load[cold]
	if denom < 1 {
		denom = 1
	}
	if gap < rb.MinGap || float64(load[hot]) < rb.HotRatio*float64(denom) {
		return 0, nil
	}

	id, ok := t.pickMigration(hot, cold)
	if !ok {
		return 0, nil
	}
	if err := t.migrate(ctx, id, hot, cold, rb.Retire); err != nil {
		return 0, err
	}
	t.migrations.Add(1)
	return 1, nil
}

// pickMigration chooses the largest fragment replicated on hot but not
// on cold (largest first shifts the most load per move).
func (t *Tier) pickMigration(hot, cold frag.SiteID) (xmltree.FragmentID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var cands []xmltree.FragmentID
	for id, sites := range t.replicas {
		onHot, onCold := false, false
		for _, s := range sites {
			if s == hot {
				onHot = true
			}
			if s == cold {
				onCold = true
			}
		}
		if onHot && !onCold {
			cands = append(cands, id)
		}
	}
	if len(cands) == 0 {
		return 0, false
	}
	sort.Slice(cands, func(i, j int) bool {
		si, sj := 0, 0
		if fr, ok := t.forest.Fragment(cands[i]); ok {
			si = fr.Size()
		}
		if fr, ok := t.forest.Fragment(cands[j]); ok {
			sj = fr.Size()
		}
		if si != sj {
			return si > sj
		}
		return cands[i] < cands[j]
	})
	return cands[0], true
}

// migrate copies fragment id onto the cold site and updates the routing
// table; serving never stops — rounds planned during the copy simply use
// the old map.
func (t *Tier) migrate(ctx context.Context, id xmltree.FragmentID, hot, cold frag.SiteID, retire bool) error {
	// Read the fragment from its best live replica (hot may be mid-
	// failure; any live copy is as good).
	src := hot
	if t.health.state(src) == Down {
		t.mu.RLock()
		for _, s := range t.replicas[id] {
			if s != cold && t.health.state(s) != Down {
				src = s
				break
			}
		}
		t.mu.RUnlock()
		if t.health.state(src) == Down {
			return fmt.Errorf("%w: fragment %d (no live source replica)", ErrBadServeMessage, id)
		}
	}
	resp, _, err := t.tr.Call(ctx, t.coord, src, cluster.Request{
		Kind:    KindCloneFragment,
		Payload: encodeFragIDReq(id),
	})
	if err != nil {
		return fmt.Errorf("serve: cloning fragment %d from %s: %w", id, src, err)
	}
	pid, parent, root, err := decodeCloneResp(id, resp.Payload)
	if err != nil {
		return err
	}
	if _, _, err := t.tr.Call(ctx, t.coord, cold, cluster.Request{
		Kind:    KindInstallFragment,
		Payload: encodeInstallReq(pid, parent, root),
	}); err != nil {
		return fmt.Errorf("serve: installing fragment %d at %s: %w", id, cold, err)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	sites := t.replicas[id]
	out := make([]frag.SiteID, 0, len(sites)+1)
	for _, s := range sites {
		if retire && s == hot {
			continue
		}
		if s == cold {
			cold = "" // already present
		}
		out = append(out, s)
	}
	if cold != "" {
		out = append(out, cold)
	}
	t.replicas[id] = out
	return nil
}

func decodeCloneResp(id xmltree.FragmentID, buf []byte) (xmltree.FragmentID, xmltree.FragmentID, *xmltree.Node, error) {
	parentRaw, n := binary.Varint(buf)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("%w: bad clone parent", ErrBadServeMessage)
	}
	root, err := xmltree.Decode(buf[n:])
	if err != nil {
		return 0, 0, nil, err
	}
	return id, xmltree.FragmentID(int32(parentRaw)), root, nil
}

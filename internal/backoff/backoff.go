// Package backoff is the shared client-side retry discipline: exponential
// delays with full jitter, a hard per-query retry budget, and room for a
// server-provided retry-after hint. Every retry loop of the stack —
// exec's round retries, core's round-level failover, the serving tier's
// probes — draws its delays from here, so retries can never multiply load
// during an incident: each attempt is strictly delayed and the budget
// bounds the total number of attempts regardless of how long the incident
// lasts.
package backoff

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy parameterizes a retry sequence. The zero value means "use the
// defaults" (see withDefaults); a negative Budget means unlimited
// attempts (the probe loop wants delays forever, never exhaustion).
type Policy struct {
	// Base is the delay ceiling of the first retry; each further retry
	// doubles the ceiling (Multiplier). Default 1ms.
	Base time.Duration
	// Max caps the delay ceiling. Default 100ms.
	Max time.Duration
	// Multiplier grows the ceiling per attempt. Default 2.
	Multiplier float64
	// Budget is the maximum number of retries (not counting the initial
	// attempt). 0 means the default (4); negative means unlimited.
	Budget int
}

// DefaultBudget is the retry budget applied when Policy.Budget is 0.
const DefaultBudget = 4

func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 100 * time.Millisecond
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Budget == 0 {
		p.Budget = DefaultBudget
	}
	return p
}

// Retries returns the policy's effective retry budget (unlimited reports
// the raw negative value).
func (p Policy) Retries() int { return p.withDefaults().Budget }

// Retry is one retry sequence drawn from a Policy; safe for concurrent
// use (scatter rounds may consult a shared sequence from several
// goroutines).
type Retry struct {
	mu      sync.Mutex
	pol     Policy
	attempt int
	rng     *rand.Rand
}

// New starts a retry sequence with a time-seeded jitter source.
func New(pol Policy) *Retry {
	return NewSeeded(pol, time.Now().UnixNano())
}

// NewSeeded starts a retry sequence whose jitter replays deterministically
// from the seed — the chaos tests script exact delay schedules with it.
func NewSeeded(pol Policy, seed int64) *Retry {
	return &Retry{pol: pol.withDefaults(), rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay to wait before the next retry and whether the
// budget allows one at all. The delay is full-jitter exponential: uniform
// in [0, min(Max, Base·Multiplier^attempt)) — full jitter desynchronizes
// a thundering herd of retriers where equal or merely randomized-around-
// the-ceiling delays would re-align it. A server-provided hint raises the
// delay to at least the hint: the server knows when it expects capacity,
// and retrying earlier is guaranteed shed work.
func (r *Retry) Next(hint time.Duration) (time.Duration, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.pol.Budget >= 0 && r.attempt >= r.pol.Budget {
		return 0, false
	}
	ceil := float64(r.pol.Base)
	for i := 0; i < r.attempt; i++ {
		ceil *= r.pol.Multiplier
		if ceil >= float64(r.pol.Max) {
			ceil = float64(r.pol.Max)
			break
		}
	}
	r.attempt++
	d := time.Duration(r.rng.Float64() * ceil)
	if hint > d {
		d = hint
	}
	return d, true
}

// Attempts reports how many retries Next has granted so far.
func (r *Retry) Attempts() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.attempt
}

// Reset rewinds the sequence to attempt zero (a success ends an
// incident; the next failure starts a fresh sequence).
func (r *Retry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempt = 0
}

// Sleep waits d or until the context is done, returning the context's
// error in the latter case — the delay must never outlive the query it
// delays.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

package backoff

import (
	"context"
	"testing"
	"time"
)

func TestBudgetExhausts(t *testing.T) {
	r := NewSeeded(Policy{Base: time.Millisecond, Budget: 3}, 1)
	for i := 0; i < 3; i++ {
		if _, ok := r.Next(0); !ok {
			t.Fatalf("retry %d refused within budget", i)
		}
	}
	if _, ok := r.Next(0); ok {
		t.Fatal("retry granted past the budget")
	}
	if got := r.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	r.Reset()
	if _, ok := r.Next(0); !ok {
		t.Fatal("retry refused after Reset")
	}
}

func TestZeroBudgetMeansDefault(t *testing.T) {
	r := NewSeeded(Policy{}, 1)
	granted := 0
	for {
		if _, ok := r.Next(0); !ok {
			break
		}
		granted++
		if granted > DefaultBudget {
			t.Fatal("zero-value policy grants unbounded retries")
		}
	}
	if granted != DefaultBudget {
		t.Fatalf("granted %d retries, want the default %d", granted, DefaultBudget)
	}
}

func TestUnlimitedBudget(t *testing.T) {
	r := NewSeeded(Policy{Budget: -1}, 1)
	for i := 0; i < 1000; i++ {
		if _, ok := r.Next(0); !ok {
			t.Fatalf("unlimited budget refused retry %d", i)
		}
	}
}

func TestDelaysJitteredAndBounded(t *testing.T) {
	pol := Policy{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Multiplier: 2, Budget: 64}
	r := NewSeeded(pol, 42)
	ceil := float64(pol.Base)
	sawNonzero := false
	for i := 0; i < 64; i++ {
		d, ok := r.Next(0)
		if !ok {
			t.Fatal("budget exhausted early")
		}
		if d < 0 || float64(d) >= float64(pol.Max) {
			t.Fatalf("attempt %d: delay %v outside [0, %v)", i, d, pol.Max)
		}
		if float64(d) >= ceil {
			t.Fatalf("attempt %d: delay %v exceeds the attempt ceiling %v", i, d, time.Duration(ceil))
		}
		if d > 0 {
			sawNonzero = true
		}
		ceil *= pol.Multiplier
		if ceil > float64(pol.Max) {
			ceil = float64(pol.Max)
		}
	}
	if !sawNonzero {
		t.Fatal("every jittered delay was zero")
	}
}

func TestSeededReplay(t *testing.T) {
	a := NewSeeded(Policy{Budget: 16}, 7)
	b := NewSeeded(Policy{Budget: 16}, 7)
	for i := 0; i < 16; i++ {
		da, _ := a.Next(0)
		db, _ := b.Next(0)
		if da != db {
			t.Fatalf("attempt %d: same seed produced %v and %v", i, da, db)
		}
	}
}

func TestHintRaisesDelay(t *testing.T) {
	r := NewSeeded(Policy{Base: time.Microsecond, Max: time.Microsecond, Budget: 8}, 1)
	hint := 50 * time.Millisecond
	d, ok := r.Next(hint)
	if !ok {
		t.Fatal("retry refused")
	}
	if d < hint {
		t.Fatalf("delay %v below the server hint %v", d, hint)
	}
}

func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err == nil {
		t.Fatal("Sleep ignored a cancelled context")
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	start := time.Now()
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("short sleep: %v", err)
	}
	if time.Since(start) < time.Millisecond {
		t.Fatal("Sleep returned before the delay elapsed")
	}
}

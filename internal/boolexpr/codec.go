package boolexpr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format: a pre-order bytecode. Each node is one opcode byte followed
// by its payload: Var carries (uvarint fragment, byte vector-kind,
// uvarint subquery index); NOT is followed by its operand; AND/OR carry a
// uvarint operand count followed by that many operands. The encoding is
// self-delimiting, so vectors of formulas can be concatenated; its exact
// byte length is what the cluster layer charges against the network cost
// model.
const (
	wireFalse byte = 0
	wireTrue  byte = 1
	wireVar   byte = 2
	wireNot   byte = 3
	wireAnd   byte = 4
	wireOr    byte = 5
)

// maxOperands bounds the operand count a decoder will accept for one AND/OR
// node, to refuse absurd allocations from hostile input.
const maxOperands = 1 << 24

// maxDepth bounds the nesting depth a decoder will accept, so a hostile
// buffer of repeated NOT opcodes (each just one byte) cannot overflow the
// decoder's stack — the depth analogue of the maxOperands fan-out bound.
// Genuine triplet formulas are shallow: constructor folding collapses
// double negations and flattens nested AND/OR, so their depth is bounded by
// the QList size, far below this limit.
const maxDepth = 1 << 13

// ErrBadFormula is wrapped by all decoding failures.
var ErrBadFormula = errors.New("boolexpr: malformed formula encoding")

// AppendEncoded appends the wire encoding of f to dst and returns the
// extended slice.
func AppendEncoded(dst []byte, f *Formula) []byte {
	switch f.op {
	case OpFalse:
		return append(dst, wireFalse)
	case OpTrue:
		return append(dst, wireTrue)
	case OpVar:
		dst = append(dst, wireVar)
		dst = binary.AppendUvarint(dst, uint64(uint32(f.v.Frag)))
		dst = append(dst, byte(f.v.Vec))
		return binary.AppendUvarint(dst, uint64(uint32(f.v.Q)))
	case OpNot:
		dst = append(dst, wireNot)
		return AppendEncoded(dst, f.kids[0])
	case OpAnd, OpOr:
		op := wireAnd
		if f.op == OpOr {
			op = wireOr
		}
		dst = append(dst, op)
		dst = binary.AppendUvarint(dst, uint64(len(f.kids)))
		for _, k := range f.kids {
			dst = AppendEncoded(dst, k)
		}
		return dst
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
}

// Encode returns the wire encoding of f.
func Encode(f *Formula) []byte { return AppendEncoded(nil, f) }

// EncodedSize returns len(Encode(f)) without allocating.
func EncodedSize(f *Formula) int {
	switch f.op {
	case OpFalse, OpTrue:
		return 1
	case OpVar:
		return 1 + uvarintLen(uint64(uint32(f.v.Frag))) + 1 + uvarintLen(uint64(uint32(f.v.Q)))
	case OpNot:
		return 1 + EncodedSize(f.kids[0])
	case OpAnd, OpOr:
		n := 1 + uvarintLen(uint64(len(f.kids)))
		for _, k := range f.kids {
			n += EncodedSize(k)
		}
		return n
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// UvarintLen returns the encoded length of v as a uvarint, for callers
// presizing wire buffers that mix formula encodings with their own
// framing.
func UvarintLen(v uint64) int { return uvarintLen(v) }

// Decoder decodes a stream of concatenated formula encodings.
type Decoder struct {
	buf   []byte
	pos   int
	depth int

	// Slab-backed decoding (NewDecoderSlab): nodes come from slab, operand
	// lists are staged in scratch (stack-disciplined across the recursion)
	// and seen is the reusable variable-dedup set of the n-ary folding.
	slab    *Slab
	scratch []*Formula
	seen    map[Var]bool
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// NewDecoderSlab returns a decoder over buf that allocates decoded formulas
// from slab, for callers decoding many formulas on a long-lived connection
// or run (see Slab). Decoded formulas are semantically identical to the
// plain decoder's — same folding, flattening and dedup.
func NewDecoderSlab(buf []byte, slab *Slab) *Decoder {
	return &Decoder{buf: buf, slab: slab, seen: make(map[Var]bool, 8)}
}

// Reset rebinds the decoder to a new buffer, keeping the slab and scratch
// state, so one decoder serves a whole stream of messages.
func (d *Decoder) Reset(buf []byte) {
	d.buf = buf
	d.pos = 0
	d.depth = 0
}

// Remaining reports how many bytes have not been consumed yet.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

func (d *Decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrBadFormula, d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrBadFormula, d.pos)
	}
	d.pos += n
	return v, nil
}

// Decode decodes the next formula from the stream.
func (d *Decoder) Decode() (*Formula, error) {
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	if d.depth++; d.depth > maxDepth {
		return nil, fmt.Errorf("%w: nesting depth exceeds %d", ErrBadFormula, maxDepth)
	}
	defer func() { d.depth-- }()
	switch op {
	case wireFalse:
		return falseF, nil
	case wireTrue:
		return trueF, nil
	case wireVar:
		frag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		vec, err := d.byte()
		if err != nil {
			return nil, err
		}
		if vec > byte(VecDV) {
			return nil, fmt.Errorf("%w: bad vector kind %d", ErrBadFormula, vec)
		}
		q, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		v := Var{Frag: int32(uint32(frag)), Vec: VecKind(vec), Q: int32(uint32(q))}
		if d.slab != nil {
			return d.slab.newVar(v), nil
		}
		return NewVar(v), nil
	case wireNot:
		k, err := d.Decode()
		if err != nil {
			return nil, err
		}
		if d.slab != nil {
			return d.slab.not(k), nil
		}
		return Not(k), nil
	case wireAnd, wireOr:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxOperands || n > uint64(d.Remaining()) {
			return nil, fmt.Errorf("%w: operand count %d exceeds remaining input", ErrBadFormula, n)
		}
		fop := OpAnd
		if op == wireOr {
			fop = OpOr
		}
		if d.slab != nil {
			// Stage operands on the shared scratch stack; the recursion
			// below may push and pop its own frames above base.
			base := len(d.scratch)
			for i := uint64(0); i < n; i++ {
				k, err := d.Decode()
				if err != nil {
					d.scratch = d.scratch[:base]
					return nil, err
				}
				d.scratch = append(d.scratch, k)
			}
			f, trimmed := d.slab.nary(fop, d.scratch[base:], d.scratch, d.seen)
			d.scratch = trimmed[:base]
			return f, nil
		}
		ks := make([]*Formula, n)
		for i := range ks {
			if ks[i], err = d.Decode(); err != nil {
				return nil, err
			}
		}
		if fop == OpAnd {
			return And(ks...), nil
		}
		return Or(ks...), nil
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d at offset %d", ErrBadFormula, op, d.pos-1)
	}
}

// DecodeOne decodes exactly one formula occupying the whole of buf.
func DecodeOne(buf []byte) (*Formula, error) {
	d := NewDecoder(buf)
	f, err := d.Decode()
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormula, d.Remaining())
	}
	return f, nil
}

// EncodedSizeVector returns len(EncodeVector(fs)) without allocating, so
// callers on the wire path can presize their buffers exactly.
func EncodedSizeVector(fs []*Formula) int {
	n := uvarintLen(uint64(len(fs)))
	for _, f := range fs {
		n += EncodedSize(f)
	}
	return n
}

// EncodeVector encodes a slice of formulas as a uvarint count followed by
// the concatenated encodings.
func EncodeVector(fs []*Formula) []byte { return AppendEncodedVector(nil, fs) }

// AppendEncodedVector appends the encoding of EncodeVector to dst.
func AppendEncodedVector(dst []byte, fs []*Formula) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = AppendEncoded(dst, f)
	}
	return dst
}

// DecodeVector decodes a vector produced by EncodeVector from the decoder.
func (d *Decoder) DecodeVector() ([]*Formula, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("%w: vector length %d exceeds buffer", ErrBadFormula, n)
	}
	fs := make([]*Formula, n)
	for i := range fs {
		if fs[i], err = d.Decode(); err != nil {
			return nil, fmt.Errorf("vector entry %d: %w", i, err)
		}
	}
	return fs, nil
}

// --- codec over arena ids --------------------------------------------------
//
// The arena speaks the exact same wire format as the pointer Formula codec,
// so a site evaluating with the arena and a coordinator decoding into a
// pointer triplet (or vice versa) interoperate byte-for-byte. Decoding into
// an arena hash-conses as it goes: structurally equal formulas arriving
// from different sites intern to the same id.

// AppendEncodedID appends the wire encoding of arena node x to dst.
func (a *Arena) AppendEncodedID(dst []byte, x NodeID) []byte {
	n := a.nodes[x]
	switch n.op {
	case OpFalse:
		return append(dst, wireFalse)
	case OpTrue:
		return append(dst, wireTrue)
	case OpVar:
		v := a.vars[n.aux]
		dst = append(dst, wireVar)
		dst = binary.AppendUvarint(dst, uint64(uint32(v.Frag)))
		dst = append(dst, byte(v.Vec))
		return binary.AppendUvarint(dst, uint64(uint32(v.Q)))
	case OpNot:
		dst = append(dst, wireNot)
		return a.AppendEncodedID(dst, NodeID(n.aux))
	case OpAnd, OpOr:
		op := wireAnd
		if n.op == OpOr {
			op = wireOr
		}
		dst = append(dst, op)
		dst = binary.AppendUvarint(dst, uint64(n.nkid))
		for _, k := range a.kids[n.aux : n.aux+n.nkid] {
			dst = a.AppendEncodedID(dst, k)
		}
		return dst
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", n.op))
	}
}

// EncodedSizeID returns the wire size of arena node x without allocating.
func (a *Arena) EncodedSizeID(x NodeID) int {
	n := a.nodes[x]
	switch n.op {
	case OpFalse, OpTrue:
		return 1
	case OpVar:
		v := a.vars[n.aux]
		return 1 + uvarintLen(uint64(uint32(v.Frag))) + 1 + uvarintLen(uint64(uint32(v.Q)))
	case OpNot:
		return 1 + a.EncodedSizeID(NodeID(n.aux))
	case OpAnd, OpOr:
		s := 1 + uvarintLen(uint64(n.nkid))
		for _, k := range a.kids[n.aux : n.aux+n.nkid] {
			s += a.EncodedSizeID(k)
		}
		return s
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", n.op))
	}
}

// DecodeID decodes the next formula from the stream, interning it into a.
func (d *Decoder) DecodeID(a *Arena) (NodeID, error) {
	op, err := d.byte()
	if err != nil {
		return IDFalse, err
	}
	if d.depth++; d.depth > maxDepth {
		return IDFalse, fmt.Errorf("%w: nesting depth exceeds %d", ErrBadFormula, maxDepth)
	}
	defer func() { d.depth-- }()
	switch op {
	case wireFalse:
		return IDFalse, nil
	case wireTrue:
		return IDTrue, nil
	case wireVar:
		frag, err := d.uvarint()
		if err != nil {
			return IDFalse, err
		}
		vec, err := d.byte()
		if err != nil {
			return IDFalse, err
		}
		if vec > byte(VecDV) {
			return IDFalse, fmt.Errorf("%w: bad vector kind %d", ErrBadFormula, vec)
		}
		q, err := d.uvarint()
		if err != nil {
			return IDFalse, err
		}
		return a.Var(Var{Frag: int32(uint32(frag)), Vec: VecKind(vec), Q: int32(uint32(q))}), nil
	case wireNot:
		k, err := d.DecodeID(a)
		if err != nil {
			return IDFalse, err
		}
		return a.Not(k), nil
	case wireAnd, wireOr:
		n, err := d.uvarint()
		if err != nil {
			return IDFalse, err
		}
		if n > maxOperands || n > uint64(d.Remaining()) {
			return IDFalse, fmt.Errorf("%w: operand count %d exceeds remaining input", ErrBadFormula, n)
		}
		ks := make([]NodeID, n)
		for i := range ks {
			if ks[i], err = d.DecodeID(a); err != nil {
				return IDFalse, err
			}
		}
		if op == wireAnd {
			return a.And(ks...), nil
		}
		return a.Or(ks...), nil
	default:
		return IDFalse, fmt.Errorf("%w: unknown opcode %d at offset %d", ErrBadFormula, op, d.pos-1)
	}
}

// DecodeVectorID decodes a vector produced by EncodeVector, interning every
// entry into a.
func (d *Decoder) DecodeVectorID(a *Arena) ([]NodeID, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("%w: vector length %d exceeds buffer", ErrBadFormula, n)
	}
	ids := make([]NodeID, n)
	for i := range ids {
		if ids[i], err = d.DecodeID(a); err != nil {
			return nil, fmt.Errorf("vector entry %d: %w", i, err)
		}
	}
	return ids, nil
}

package boolexpr

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Wire format: a pre-order bytecode. Each node is one opcode byte followed
// by its payload: Var carries (uvarint fragment, byte vector-kind,
// uvarint subquery index); NOT is followed by its operand; AND/OR carry a
// uvarint operand count followed by that many operands. The encoding is
// self-delimiting, so vectors of formulas can be concatenated; its exact
// byte length is what the cluster layer charges against the network cost
// model.
const (
	wireFalse byte = 0
	wireTrue  byte = 1
	wireVar   byte = 2
	wireNot   byte = 3
	wireAnd   byte = 4
	wireOr    byte = 5
)

// maxOperands bounds the operand count a decoder will accept for one AND/OR
// node, to refuse absurd allocations from hostile input.
const maxOperands = 1 << 24

// ErrBadFormula is wrapped by all decoding failures.
var ErrBadFormula = errors.New("boolexpr: malformed formula encoding")

// AppendEncoded appends the wire encoding of f to dst and returns the
// extended slice.
func AppendEncoded(dst []byte, f *Formula) []byte {
	switch f.op {
	case OpFalse:
		return append(dst, wireFalse)
	case OpTrue:
		return append(dst, wireTrue)
	case OpVar:
		dst = append(dst, wireVar)
		dst = binary.AppendUvarint(dst, uint64(uint32(f.v.Frag)))
		dst = append(dst, byte(f.v.Vec))
		return binary.AppendUvarint(dst, uint64(uint32(f.v.Q)))
	case OpNot:
		dst = append(dst, wireNot)
		return AppendEncoded(dst, f.kids[0])
	case OpAnd, OpOr:
		op := wireAnd
		if f.op == OpOr {
			op = wireOr
		}
		dst = append(dst, op)
		dst = binary.AppendUvarint(dst, uint64(len(f.kids)))
		for _, k := range f.kids {
			dst = AppendEncoded(dst, k)
		}
		return dst
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
}

// Encode returns the wire encoding of f.
func Encode(f *Formula) []byte { return AppendEncoded(nil, f) }

// EncodedSize returns len(Encode(f)) without allocating.
func EncodedSize(f *Formula) int {
	switch f.op {
	case OpFalse, OpTrue:
		return 1
	case OpVar:
		return 1 + uvarintLen(uint64(uint32(f.v.Frag))) + 1 + uvarintLen(uint64(uint32(f.v.Q)))
	case OpNot:
		return 1 + EncodedSize(f.kids[0])
	case OpAnd, OpOr:
		n := 1 + uvarintLen(uint64(len(f.kids)))
		for _, k := range f.kids {
			n += EncodedSize(k)
		}
		return n
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Decoder decodes a stream of concatenated formula encodings.
type Decoder struct {
	buf []byte
	pos int
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Remaining reports how many bytes have not been consumed yet.
func (d *Decoder) Remaining() int { return len(d.buf) - d.pos }

func (d *Decoder) byte() (byte, error) {
	if d.pos >= len(d.buf) {
		return 0, fmt.Errorf("%w: truncated at offset %d", ErrBadFormula, d.pos)
	}
	b := d.buf[d.pos]
	d.pos++
	return b, nil
}

func (d *Decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrBadFormula, d.pos)
	}
	d.pos += n
	return v, nil
}

// Decode decodes the next formula from the stream.
func (d *Decoder) Decode() (*Formula, error) {
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	switch op {
	case wireFalse:
		return falseF, nil
	case wireTrue:
		return trueF, nil
	case wireVar:
		frag, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		vec, err := d.byte()
		if err != nil {
			return nil, err
		}
		if vec > byte(VecDV) {
			return nil, fmt.Errorf("%w: bad vector kind %d", ErrBadFormula, vec)
		}
		q, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		return NewVar(Var{Frag: int32(uint32(frag)), Vec: VecKind(vec), Q: int32(uint32(q))}), nil
	case wireNot:
		k, err := d.Decode()
		if err != nil {
			return nil, err
		}
		return Not(k), nil
	case wireAnd, wireOr:
		n, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		if n > maxOperands || n > uint64(d.Remaining()) {
			return nil, fmt.Errorf("%w: operand count %d exceeds remaining input", ErrBadFormula, n)
		}
		ks := make([]*Formula, n)
		for i := range ks {
			if ks[i], err = d.Decode(); err != nil {
				return nil, err
			}
		}
		if op == wireAnd {
			return And(ks...), nil
		}
		return Or(ks...), nil
	default:
		return nil, fmt.Errorf("%w: unknown opcode %d at offset %d", ErrBadFormula, op, d.pos-1)
	}
}

// DecodeOne decodes exactly one formula occupying the whole of buf.
func DecodeOne(buf []byte) (*Formula, error) {
	d := NewDecoder(buf)
	f, err := d.Decode()
	if err != nil {
		return nil, err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormula, d.Remaining())
	}
	return f, nil
}

// EncodeVector encodes a slice of formulas as a uvarint count followed by
// the concatenated encodings.
func EncodeVector(fs []*Formula) []byte { return AppendEncodedVector(nil, fs) }

// AppendEncodedVector appends the encoding of EncodeVector to dst.
func AppendEncodedVector(dst []byte, fs []*Formula) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(fs)))
	for _, f := range fs {
		dst = AppendEncoded(dst, f)
	}
	return dst
}

// DecodeVector decodes a vector produced by EncodeVector from the decoder.
func (d *Decoder) DecodeVector() ([]*Formula, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.Remaining())+1 {
		return nil, fmt.Errorf("%w: vector length %d exceeds buffer", ErrBadFormula, n)
	}
	fs := make([]*Formula, n)
	for i := range fs {
		if fs[i], err = d.Decode(); err != nil {
			return nil, fmt.Errorf("vector entry %d: %w", i, err)
		}
	}
	return fs, nil
}

package boolexpr

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// genVars is the small variable universe used by the generators, so random
// formulas share variables often enough to exercise dedup and folding.
var genVars = []Var{
	{Frag: 1, Vec: VecV, Q: 0},
	{Frag: 1, Vec: VecDV, Q: 1},
	{Frag: 2, Vec: VecV, Q: 2},
	{Frag: 2, Vec: VecDV, Q: 0},
	{Frag: 3, Vec: VecCV, Q: 5},
}

// genFormula builds a random formula of bounded depth using only the public
// constructors, so every generated formula is in constructor-normal form.
func genFormula(r *rand.Rand, depth int) *Formula {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(4) {
		case 0:
			return True()
		case 1:
			return False()
		default:
			return NewVar(genVars[r.Intn(len(genVars))])
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not(genFormula(r, depth-1))
	case 1:
		n := 2 + r.Intn(3)
		ks := make([]*Formula, n)
		for i := range ks {
			ks[i] = genFormula(r, depth-1)
		}
		return And(ks...)
	default:
		n := 2 + r.Intn(3)
		ks := make([]*Formula, n)
		for i := range ks {
			ks[i] = genFormula(r, depth-1)
		}
		return Or(ks...)
	}
}

func genAssignment(r *rand.Rand) Assignment {
	a := make(Assignment, len(genVars))
	for _, v := range genVars {
		a[v] = r.Intn(2) == 0
	}
	return a
}

func TestConstants(t *testing.T) {
	if v, ok := True().ConstValue(); !ok || !v {
		t.Errorf("True().ConstValue() = %v, %v; want true, true", v, ok)
	}
	if v, ok := False().ConstValue(); !ok || v {
		t.Errorf("False().ConstValue() = %v, %v; want false, true", v, ok)
	}
	if Const(true) != True() || Const(false) != False() {
		t.Error("Const does not return the canonical constants")
	}
	if _, ok := NewVar(genVars[0]).ConstValue(); ok {
		t.Error("a variable must not be constant")
	}
}

func TestNotFolding(t *testing.T) {
	if Not(True()) != False() || Not(False()) != True() {
		t.Error("Not does not fold constants")
	}
	x := NewVar(genVars[0])
	if Not(Not(x)) != x {
		t.Error("double negation not eliminated")
	}
	if Not(x).Op() != OpNot {
		t.Error("Not(x) should be a negation node")
	}
}

func TestAndOrFolding(t *testing.T) {
	x, y := NewVar(genVars[0]), NewVar(genVars[1])
	cases := []struct {
		name string
		got  *Formula
		want *Formula
	}{
		{"and-false-absorbs", And(x, False(), y), False()},
		{"and-true-identity", And(True(), x), x},
		{"and-empty", And(), True()},
		{"or-true-absorbs", Or(x, True()), True()},
		{"or-false-identity", Or(False(), y), y},
		{"or-empty", Or(), False()},
		{"and-dedup", And(x, x), x},
		{"or-dedup", Or(y, y, y), y},
		{"and-flatten", And(And(x, y), x), And(x, y)},
		{"or-flatten", Or(x, Or(y, x)), Or(x, y)},
	}
	for _, c := range cases {
		if !c.got.Equal(c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestCompFmTruthTable(t *testing.T) {
	// Procedure compFm on constants must agree with the Boolean operators;
	// this is the (0,0) case of the paper's case analysis.
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			if got, _ := CompFm(Const(a), Const(b), AND).ConstValue(); got != (a && b) {
				t.Errorf("CompFm(%v,%v,AND) = %v", a, b, got)
			}
			if got, _ := CompFm(Const(a), Const(b), OR).ConstValue(); got != (a || b) {
				t.Errorf("CompFm(%v,%v,OR) = %v", a, b, got)
			}
		}
		if got, _ := CompFm(Const(a), nil, NEG).ConstValue(); got != !a {
			t.Errorf("CompFm(%v,-,NEG) = %v", a, got)
		}
	}
}

func TestCompFmMixed(t *testing.T) {
	// Cases (c1)-(c3): composing a constant with a residual formula must
	// either short-circuit or keep the residual.
	x := NewVar(genVars[0])
	if CompFm(True(), x, AND) != x {
		t.Error("true AND f must be f")
	}
	if CompFm(False(), x, AND) != False() {
		t.Error("false AND f must be false")
	}
	if CompFm(True(), x, OR) != True() {
		t.Error("true OR f must be true")
	}
	if CompFm(False(), x, OR) != x {
		t.Error("false OR f must be f")
	}
	y := NewVar(genVars[1])
	f := CompFm(x, y, AND)
	if f.Op() != OpAnd || len(f.Operands()) != 2 {
		t.Errorf("x AND y should stay residual, got %v", f)
	}
}

// TestPropFoldingSoundness checks that the simplifying constructors preserve
// semantics: a formula built with constructors evaluates exactly as its
// un-simplified counterpart on every random assignment.
func TestPropFoldingSoundness(t *testing.T) {
	type spec struct {
		Seed int64
	}
	f := func(s spec) bool {
		r := rand.New(rand.NewSource(s.Seed))
		// Build a random "raw" evaluation plan and its constructor version.
		var build func(depth int) (func(Assignment) bool, *Formula)
		build = func(depth int) (func(Assignment) bool, *Formula) {
			if depth <= 0 || r.Intn(4) == 0 {
				switch r.Intn(4) {
				case 0:
					return func(Assignment) bool { return true }, True()
				case 1:
					return func(Assignment) bool { return false }, False()
				default:
					v := genVars[r.Intn(len(genVars))]
					return func(a Assignment) bool { return a[v] }, NewVar(v)
				}
			}
			switch r.Intn(3) {
			case 0:
				e, g := build(depth - 1)
				return func(a Assignment) bool { return !e(a) }, Not(g)
			case 1:
				e1, g1 := build(depth - 1)
				e2, g2 := build(depth - 1)
				return func(a Assignment) bool { return e1(a) && e2(a) }, And(g1, g2)
			default:
				e1, g1 := build(depth - 1)
				e2, g2 := build(depth - 1)
				return func(a Assignment) bool { return e1(a) || e2(a) }, Or(g1, g2)
			}
		}
		eval, formula := build(5)
		for i := 0; i < 8; i++ {
			a := genAssignment(r)
			if formula.Eval(a.Total) != eval(a) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropSubstThenEval checks that partially substituting some variables
// and then evaluating the residual equals evaluating the original directly.
func TestPropSubstThenEval(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genFormula(r, 5)
		full := genAssignment(r)
		// Bind a random subset first.
		partial := make(Assignment)
		for v, b := range full {
			if r.Intn(2) == 0 {
				partial[v] = b
			}
		}
		resid := g.Subst(partial.Lookup)
		return resid.Eval(full.Total) == g.Eval(full.Total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropSubstTotalIsConstant checks that substituting every variable
// always folds the formula to a constant — the property Procedure evalST
// relies on when unifying a leaf fragment's triplet.
func TestPropSubstTotalIsConstant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genFormula(r, 5)
		a := genAssignment(r)
		resid := g.Subst(a.Lookup)
		v, ok := resid.ConstValue()
		return ok && v == g.Eval(a.Total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSubstNoBindingReturnsSame(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		g := genFormula(r, 4)
		if got := g.Subst(func(Var) (*Formula, bool) { return nil, false }); got != g {
			t.Fatalf("Subst with empty env must return the identical formula, got %v from %v", got, g)
		}
	}
}

func TestVarSetSortedDistinct(t *testing.T) {
	x, y := genVars[0], genVars[2]
	g := And(NewVar(y), Or(NewVar(x), NewVar(y)))
	vs := g.VarSet()
	if len(vs) != 2 || vs[0] != x || vs[1] != y {
		t.Errorf("VarSet = %v, want [%v %v]", vs, x, y)
	}
}

func TestString(t *testing.T) {
	x, y, z := NewVar(genVars[0]), NewVar(genVars[1]), NewVar(genVars[2])
	g := Or(And(x, Not(y)), z)
	s := g.String()
	for _, want := range []string{"&", "|", "!", "x(1,V,0)", "x(1,DV,1)", "x(2,V,2)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	// Parenthesization must respect precedence: the Or operand that is an
	// And must not need parens, but an Or under And must get them.
	h := And(Or(x, y), z)
	if hs := h.String(); !strings.Contains(hs, "(") {
		t.Errorf("And(Or(..)) must parenthesize the Or: %q", hs)
	}
}

func TestSize(t *testing.T) {
	x, y := NewVar(genVars[0]), NewVar(genVars[1])
	if got := True().Size(); got != 1 {
		t.Errorf("Size(true) = %d", got)
	}
	if got := And(x, Not(y)).Size(); got != 4 {
		t.Errorf("Size(x & !y) = %d, want 4", got)
	}
}

func TestEqual(t *testing.T) {
	x, y := NewVar(genVars[0]), NewVar(genVars[1])
	if !And(x, y).Equal(And(x, y)) {
		t.Error("structurally equal formulas reported unequal")
	}
	if And(x, y).Equal(Or(x, y)) {
		t.Error("And vs Or reported equal")
	}
	if And(x, y).Equal(And(y, x)) {
		t.Error("Equal must be structural (ordered), not semantic")
	}
}

package boolexpr

import "testing"

func TestBitVecOps(t *testing.T) {
	b := NewBitVec(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	for _, i := range []int32{0, 64, 129} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	b.Assign(64, false)
	if b.Get(64) {
		t.Error("bit 64 still set after Assign(false)")
	}
	o := NewBitVec(130)
	o.Set(64)
	b.Or(o)
	if !b.Get(64) || !b.Get(0) {
		t.Error("Or lost bits")
	}
	b.Clear()
	for _, i := range []int32{0, 64, 129} {
		if b.Get(i) {
			t.Errorf("bit %d survived Clear", i)
		}
	}
}

// TestBitVecOrMismatchPanics pins the length guard: mixing vectors of
// different QLists must fail loudly in both directions (a longer operand
// used to panic with an index error, a shorter one silently dropped bits).
func TestBitVecOrMismatchPanics(t *testing.T) {
	for name, pair := range map[string][2]BitVec{
		"operand shorter": {NewBitVec(130), NewBitVec(64)},
		"operand longer":  {NewBitVec(64), NewBitVec(130)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Or did not panic", name)
				}
			}()
			pair[0].Or(pair[1])
		}()
	}
}

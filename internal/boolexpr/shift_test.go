package boolexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// shiftRef is the bit-by-bit reference for ShiftWord: bit i of the result
// is bit i-d of b, over every bit position the words can hold (the result
// may carry source bits shifted past the vector's logical size — kernel
// ops always mask, so the contract is word-level, not lane-level).
func shiftRef(b BitVec, n int, d int32) BitVec {
	out := NewBitVec(n)
	top := int32(len(out) * 64)
	for i := d; i < top; i++ {
		if i-d < top && b.Get(i-d) {
			out[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return out
}

func TestShiftWordMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint8, dRaw uint16) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%200
		d := int32(dRaw) % int32(n+70) // exercise out-of-range shifts too
		b := NewBitVec(n)
		for i := 0; i < n/2; i++ {
			b.Set(int32(r.Intn(n)))
		}
		want := shiftRef(b, n, d)
		for w := range b {
			if got := ShiftWord(b, w, d); got != want[w] {
				t.Logf("n=%d d=%d word %d: got %016x want %016x", n, d, w, got, want[w])
				return false
			}
		}
		// ShiftWordOr(a, b) must equal ShiftWord over the materialized union.
		a := NewBitVec(n)
		for i := 0; i < n/2; i++ {
			a.Set(int32(r.Intn(n)))
		}
		union := NewBitVec(n)
		union.Or(a)
		union.Or(b)
		for w := range b {
			if got := ShiftWordOr(a, b, w, d); got != ShiftWord(union, w, d) {
				t.Logf("union n=%d d=%d word %d mismatch", n, d, w)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestArenaReset: after Reset, the arena reproduces exactly the ids a fresh
// arena would hand out, and pre-Reset interning leaves no trace.
func TestArenaReset(t *testing.T) {
	build := func(a *Arena) []NodeID {
		x := a.Var(Var{Frag: 1, Vec: VecV, Q: 0})
		y := a.Var(Var{Frag: 2, Vec: VecDV, Q: 3})
		ids := []NodeID{
			x, y,
			a.And2(x, y),
			a.Or2(a.Not(x), IDTrue),
			a.And2(a.Or2(x, y), a.Not(y)),
		}
		return ids
	}
	reused := NewArena()
	// Populate with different content so Reset has real state to clear.
	z := reused.Var(Var{Frag: 9, Vec: VecV, Q: 7})
	reused.Or2(reused.Not(z), reused.Var(Var{Frag: 8, Vec: VecDV, Q: 1}))
	reused.Reset()

	fresh := NewArena()
	got, want := build(reused), build(fresh)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("id %d after Reset = %d, fresh arena = %d", i, got[i], want[i])
		}
	}
	if reused.Len() != fresh.Len() {
		t.Errorf("arena sizes diverge after Reset: %d vs %d", reused.Len(), fresh.Len())
	}
	// Subst across the Reset boundary must not see stale memo entries.
	sub := reused.Subst(got[2], func(v Var) (NodeID, bool) { return IDTrue, true })
	if sub != IDTrue {
		t.Errorf("Subst(x∧y, all-true) = %d, want IDTrue", sub)
	}
}

package boolexpr

// Slab is a chunked allocator for decoded formulas: Formula nodes and
// operand slices are carved out of large backing arrays instead of being
// allocated one by one. A long-lived decoder — the coordinator draining one
// site's evalQual response, a connection decoding a stream of triplets —
// attaches one Slab and its per-formula allocation cost amortizes to one
// heap allocation per chunk (the wire analogue of the tcp server's
// per-connection scratch buffers).
//
// Formulas built from a Slab are ordinary immutable *Formula values and
// stay valid for as long as the Slab (or any formula referencing the same
// chunk) is reachable; there is no free or reset. A Slab is not safe for
// concurrent use.
type Slab struct {
	nodes []Formula
	kids  []*Formula
}

// slabChunk is the number of Formula nodes (and operand pointers) carved
// per backing array. Triplet formulas are tens of nodes; one chunk serves
// many triplets.
const slabChunk = 1024

// NewSlab returns an empty slab; chunks are allocated on demand.
func NewSlab() *Slab { return &Slab{} }

// node stores f in the slab and returns its address. Appending never
// reallocates the current chunk (a full chunk is replaced, not grown), so
// previously returned pointers stay valid.
func (s *Slab) node(f Formula) *Formula {
	if len(s.nodes) == cap(s.nodes) {
		s.nodes = make([]Formula, 0, slabChunk)
	}
	s.nodes = append(s.nodes, f)
	return &s.nodes[len(s.nodes)-1]
}

// operands returns a full-capacity slice of n operand slots carved from the
// slab.
func (s *Slab) operands(n int) []*Formula {
	if cap(s.kids)-len(s.kids) < n {
		size := slabChunk
		if n > size {
			size = n
		}
		s.kids = make([]*Formula, 0, size)
	}
	s.kids = s.kids[:len(s.kids)+n]
	return s.kids[len(s.kids)-n : len(s.kids) : len(s.kids)]
}

// --- slab-aware constructors ----------------------------------------------
//
// These mirror NewVar/Not/combine exactly (same folding, flattening and
// variable dedup — the codec fuzz target cross-checks the parity) but
// allocate any new node from the slab. Folding paths that return an
// existing formula allocate nothing.

func (s *Slab) newVar(v Var) *Formula { return s.node(Formula{op: OpVar, v: v}) }

func (s *Slab) not(f *Formula) *Formula {
	switch f.op {
	case OpTrue:
		return falseF
	case OpFalse:
		return trueF
	case OpNot:
		return f.kids[0]
	default:
		kids := s.operands(1)
		kids[0] = f
		return s.node(Formula{op: OpNot, kids: kids})
	}
}

// nary is combine over slab storage. scratch is caller-owned working space
// for the flattened operand list (the decoder reuses one across calls);
// seen is the caller-owned variable-dedup set, cleared here before use.
func (s *Slab) nary(op Op, fs []*Formula, scratch []*Formula, seen map[Var]bool) (*Formula, []*Formula) {
	absorb, identity := falseF, trueF
	if op == OpOr {
		absorb, identity = trueF, falseF
	}
	clear(seen)
	base := len(scratch)
	var add func(f *Formula) bool // reports whether the absorbing constant was hit
	add = func(f *Formula) bool {
		switch {
		case f == absorb:
			return true
		case f == identity:
			return false
		case f.op == op:
			for _, k := range f.kids {
				if add(k) {
					return true
				}
			}
			return false
		case f.op == OpVar:
			if seen[f.v] {
				return false
			}
			seen[f.v] = true
			scratch = append(scratch, f)
			return false
		default:
			scratch = append(scratch, f)
			return false
		}
	}
	for _, f := range fs {
		if add(f) {
			return absorb, scratch[:base]
		}
	}
	out := scratch[base:]
	switch len(out) {
	case 0:
		return identity, scratch[:base]
	case 1:
		return out[0], scratch[:base]
	}
	kids := s.operands(len(out))
	copy(kids, out)
	return s.node(Formula{op: op, kids: kids}), scratch[:base]
}

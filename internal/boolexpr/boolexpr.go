// Package boolexpr implements the Boolean formulas ("residual functions")
// that ParBoX ships between sites in place of data.
//
// A formula is built from the constants true and false, variables, and the
// connectives AND, OR and NOT. Variables are typed: a variable names one
// entry of one of the three vectors (V, CV, DV) that Procedure bottomUp of
// the paper computes for the root of a fragment. Formulas are immutable and
// every constructor performs constant folding, so a formula that can be
// decided locally is always represented by a constant. This is what keeps
// the per-fragment partial answers compact: the size of a shipped formula is
// bounded by the number of virtual nodes of the fragment, never by the size
// of the fragment itself (Section 3.2 of the paper).
package boolexpr

import (
	"fmt"
	"sort"
	"strings"
)

// VecKind identifies which of the three per-node vectors a variable refers
// to. A parent fragment only ever consumes the V and DV vectors of a
// sub-fragment (Procedure bottomUp, lines 4-5), so VecCV never occurs in a
// shipped formula; it is retained so tests can document that fact.
type VecKind uint8

const (
	// VecV is the vector of subquery values at the fragment root.
	VecV VecKind = iota
	// VecCV is the vector of child-disjunctions at the fragment root.
	VecCV
	// VecDV is the vector of descendant-or-self disjunctions.
	VecDV
)

// String returns the conventional short name of the vector kind.
func (k VecKind) String() string {
	switch k {
	case VecV:
		return "V"
	case VecCV:
		return "CV"
	case VecDV:
		return "DV"
	default:
		return fmt.Sprintf("VecKind(%d)", uint8(k))
	}
}

// Var names the value of subquery Q of the QList at the root of fragment
// Frag, in vector Vec. It is the unknown introduced for a virtual node.
type Var struct {
	Frag int32
	Vec  VecKind
	Q    int32
}

// String renders the variable as x(frag,vec,q).
func (v Var) String() string {
	return fmt.Sprintf("x(%d,%s,%d)", v.Frag, v.Vec, v.Q)
}

// Op is the top-level operator of a formula node.
type Op uint8

const (
	// OpFalse is the constant false.
	OpFalse Op = iota
	// OpTrue is the constant true.
	OpTrue
	// OpVar is a variable leaf.
	OpVar
	// OpNot is negation (one operand).
	OpNot
	// OpAnd is n-ary conjunction (two or more operands).
	OpAnd
	// OpOr is n-ary disjunction (two or more operands).
	OpOr
)

// Formula is an immutable Boolean formula. The zero value is the constant
// false. Construct formulas with False, True, NewVar, Not, And and Or;
// never mutate a Formula after it has been shared.
type Formula struct {
	op   Op
	v    Var
	kids []*Formula
}

var (
	falseF = &Formula{op: OpFalse}
	trueF  = &Formula{op: OpTrue}
)

// False returns the constant false formula.
func False() *Formula { return falseF }

// True returns the constant true formula.
func True() *Formula { return trueF }

// Const returns the constant formula for b.
func Const(b bool) *Formula {
	if b {
		return trueF
	}
	return falseF
}

// NewVar returns a variable leaf formula.
func NewVar(v Var) *Formula { return &Formula{op: OpVar, v: v} }

// Op reports the top-level operator.
func (f *Formula) Op() Op { return f.op }

// Var returns the variable of an OpVar node; it is meaningless otherwise.
func (f *Formula) Var() Var { return f.v }

// Operands returns the operand list of an OpAnd/OpOr node, or the single
// operand of OpNot. The returned slice must not be modified.
func (f *Formula) Operands() []*Formula { return f.kids }

// IsConst reports whether f is the constant true or false.
func (f *Formula) IsConst() bool { return f.op == OpFalse || f.op == OpTrue }

// ConstValue returns the value of a constant formula and whether f is
// constant at all.
func (f *Formula) ConstValue() (value, ok bool) {
	switch f.op {
	case OpTrue:
		return true, true
	case OpFalse:
		return false, true
	default:
		return false, false
	}
}

// Not returns the negation of f with constant folding and double-negation
// elimination.
func Not(f *Formula) *Formula {
	switch f.op {
	case OpTrue:
		return falseF
	case OpFalse:
		return trueF
	case OpNot:
		return f.kids[0]
	default:
		return &Formula{op: OpNot, kids: []*Formula{f}}
	}
}

// And returns the conjunction of fs. Constants are folded, nested
// conjunctions are flattened and duplicate variable leaves are dropped.
func And(fs ...*Formula) *Formula {
	// Allocation-free fast path for the dominant case: binary composition
	// with at least one constant (on complete trees everything is
	// constant, and Procedure bottomUp calls this three times per
	// subquery per node).
	if len(fs) == 2 {
		a, b := fs[0], fs[1]
		if a == falseF || b == falseF {
			return falseF
		}
		if a == trueF {
			return b
		}
		if b == trueF {
			return a
		}
		if a == b {
			return a
		}
	}
	return combine(OpAnd, fs)
}

// Or returns the disjunction of fs with the dual simplifications of And.
func Or(fs ...*Formula) *Formula {
	if len(fs) == 2 {
		a, b := fs[0], fs[1]
		if a == trueF || b == trueF {
			return trueF
		}
		if a == falseF {
			return b
		}
		if b == falseF {
			return a
		}
		if a == b {
			return a
		}
	}
	return combine(OpOr, fs)
}

func combine(op Op, fs []*Formula) *Formula {
	// Identity and absorbing constants for the operator.
	absorb, identity := falseF, trueF
	if op == OpOr {
		absorb, identity = trueF, falseF
	}
	out := make([]*Formula, 0, len(fs))
	var seenVar map[Var]bool      // allocated lazily: most calls see ≤1 variable
	var add func(f *Formula) bool // reports whether the absorbing constant was hit
	add = func(f *Formula) bool {
		switch {
		case f == absorb:
			return true
		case f == identity:
			return false
		case f.op == op:
			for _, k := range f.kids {
				if add(k) {
					return true
				}
			}
			return false
		case f.op == OpVar:
			if seenVar == nil {
				seenVar = make(map[Var]bool, 4)
			} else if seenVar[f.v] {
				return false
			}
			seenVar[f.v] = true
			out = append(out, f)
			return false
		default:
			out = append(out, f)
			return false
		}
	}
	for _, f := range fs {
		if add(f) {
			return absorb
		}
	}
	switch len(out) {
	case 0:
		return identity
	case 1:
		return out[0]
	}
	return &Formula{op: op, kids: out}
}

// BinOp is the operator argument of CompFm, mirroring Procedure compFm of
// the paper (Fig. 3b).
type BinOp uint8

const (
	// OR composes two partial answers disjunctively.
	OR BinOp = iota
	// AND composes two partial answers conjunctively.
	AND
	// NEG negates the first argument; the second is ignored.
	NEG
)

// CompFm is Procedure compFm of the paper: it composes two partial answers
// (truth values and/or residual formulas) under op, returning either a truth
// value or a residual formula. The four cases (c0)-(c3) of the paper
// collapse into the folding constructors above.
func CompFm(f1, f2 *Formula, op BinOp) *Formula {
	switch op {
	case NEG:
		return Not(f1)
	case AND:
		return And(f1, f2)
	case OR:
		return Or(f1, f2)
	default:
		panic(fmt.Sprintf("boolexpr: unknown BinOp %d", op))
	}
}

// Eval evaluates f under a total assignment. env must return the value of
// every variable that occurs in f.
func (f *Formula) Eval(env func(Var) bool) bool {
	switch f.op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpVar:
		return env(f.v)
	case OpNot:
		return !f.kids[0].Eval(env)
	case OpAnd:
		for _, k := range f.kids {
			if !k.Eval(env) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range f.kids {
			if k.Eval(env) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
}

// Subst substitutes variables for which env returns ok, folding constants as
// it goes. Variables with no binding remain symbolic; if every variable is
// bound the result is a constant. This is the unification step of Procedure
// evalST: the coordinator substitutes a sub-fragment's computed triplet into
// the parent fragment's formulas.
func (f *Formula) Subst(env func(Var) (*Formula, bool)) *Formula {
	switch f.op {
	case OpTrue, OpFalse:
		return f
	case OpVar:
		if g, ok := env(f.v); ok {
			return g
		}
		return f
	case OpNot:
		k := f.kids[0].Subst(env)
		if k == f.kids[0] {
			return f
		}
		return Not(k)
	case OpAnd, OpOr:
		changed := false
		ks := make([]*Formula, len(f.kids))
		for i, k := range f.kids {
			ks[i] = k.Subst(env)
			if ks[i] != k {
				changed = true
			}
		}
		if !changed {
			return f
		}
		if f.op == OpAnd {
			return And(ks...)
		}
		return Or(ks...)
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
}

// Size returns the number of nodes of the formula tree; it is the unit in
// which the paper's communication bounds are stated.
func (f *Formula) Size() int {
	n := 1
	for _, k := range f.kids {
		n += k.Size()
	}
	return n
}

// Vars calls visit for every variable occurrence in f (duplicates included).
func (f *Formula) Vars(visit func(Var)) {
	switch f.op {
	case OpVar:
		visit(f.v)
	default:
		for _, k := range f.kids {
			k.Vars(visit)
		}
	}
}

// VarSet returns the distinct variables of f in a deterministic order.
func (f *Formula) VarSet() []Var {
	seen := make(map[Var]bool)
	var vs []Var
	f.Vars(func(v Var) {
		if !seen[v] {
			seen[v] = true
			vs = append(vs, v)
		}
	})
	sort.Slice(vs, func(i, j int) bool {
		a, b := vs[i], vs[j]
		if a.Frag != b.Frag {
			return a.Frag < b.Frag
		}
		if a.Vec != b.Vec {
			return a.Vec < b.Vec
		}
		return a.Q < b.Q
	})
	return vs
}

// Equal reports structural equality of two formulas.
func (f *Formula) Equal(g *Formula) bool {
	if f == g {
		return true
	}
	if f.op != g.op || f.v != g.v || len(f.kids) != len(g.kids) {
		return false
	}
	for i := range f.kids {
		if !f.kids[i].Equal(g.kids[i]) {
			return false
		}
	}
	return true
}

// String renders the formula with !, & and | and minimal parentheses.
func (f *Formula) String() string {
	var b strings.Builder
	f.write(&b, 0)
	return b.String()
}

// precedence: Or=1, And=2, Not=3, leaves=4.
func (f *Formula) write(b *strings.Builder, parentPrec int) {
	prec := 4
	switch f.op {
	case OpOr:
		prec = 1
	case OpAnd:
		prec = 2
	case OpNot:
		prec = 3
	}
	if prec < parentPrec {
		b.WriteByte('(')
	}
	switch f.op {
	case OpTrue:
		b.WriteByte('1')
	case OpFalse:
		b.WriteByte('0')
	case OpVar:
		b.WriteString(f.v.String())
	case OpNot:
		b.WriteByte('!')
		f.kids[0].write(b, prec+1)
	case OpAnd, OpOr:
		sep := " & "
		if f.op == OpOr {
			sep = " | "
		}
		for i, k := range f.kids {
			if i > 0 {
				b.WriteString(sep)
			}
			k.write(b, prec)
		}
	}
	if prec < parentPrec {
		b.WriteByte(')')
	}
}

// Assignment is a finite map from variables to truth values, used both as a
// total environment (Eval) and a partial substitution (Subst).
type Assignment map[Var]bool

// Lookup adapts the assignment to the Subst callback signature.
func (a Assignment) Lookup(v Var) (*Formula, bool) {
	b, ok := a[v]
	if !ok {
		return nil, false
	}
	return Const(b), true
}

// Total adapts the assignment to the Eval callback signature; unbound
// variables evaluate to false.
func (a Assignment) Total(v Var) bool { return a[v] }

package boolexpr

import "fmt"

// NodeID names one formula node inside an Arena. The two constants are
// pre-interned at fixed positions, so constant tests are integer compares.
// Because the arena hash-conses every constructor, structurally equal
// formulas of the same arena always have the same NodeID: equality is O(1)
// and substitution can memoize by id.
type NodeID int32

const (
	// IDFalse is the constant false in every arena.
	IDFalse NodeID = 0
	// IDTrue is the constant true in every arena.
	IDTrue NodeID = 1
)

// arenaNode is one interned node: 12 bytes instead of a 48-byte Formula
// plus a separate operand slice. Operand lists of AND/OR nodes live
// contiguously in the arena's shared kids slice.
type arenaNode struct {
	op   Op
	nkid int32 // OpAnd/OpOr: operand count; OpNot: 1; leaves: 0
	aux  int32 // OpVar: index into vars; OpNot: operand NodeID; OpAnd/OpOr: offset into kids
}

// Arena is a hash-consed formula store — the "variable plane" of the
// evaluator. All constructors perform the same constant folding as the
// pointer-based Formula constructors, and additionally intern the result:
// building a formula that already exists returns its existing id without
// allocating. An Arena is meant to live for one evaluation (one bottomUp
// pass, one solve of the equation system) and be discarded wholesale; it is
// not safe for concurrent use.
type Arena struct {
	nodes  []arenaNode
	kids   []NodeID
	vars   []Var
	varIDs map[Var]NodeID
	intern map[uint64][]NodeID

	// Subst memoization: memo[x] holds the substitution result for node x
	// when memoGen[x] equals the current generation. NewGen invalidates the
	// whole table in O(1) by bumping gen.
	memo    []NodeID
	memoGen []uint32
	gen     uint32

	scratch []NodeID // reusable operand buffer for combine
	// substKids is the stack-disciplined rewrite buffer of subst: each
	// AND/OR frame stages its rewritten operands here instead of
	// allocating a fresh slice per node.
	substKids []NodeID
}

// NewArena returns an arena holding only the two constants.
func NewArena() *Arena {
	return &Arena{
		nodes:  []arenaNode{{op: OpFalse}, {op: OpTrue}},
		varIDs: make(map[Var]NodeID),
		intern: make(map[uint64][]NodeID),
		gen:    1,
	}
}

// Len returns the number of distinct nodes interned so far.
func (a *Arena) Len() int { return len(a.nodes) }

// Reset returns the arena to its freshly constructed state while retaining
// every piece of allocated storage — node/operand/var slabs, intern map
// buckets, the Subst memo table and rewrite buffers — so pooled arenas let
// steady-state evaluation rounds run without re-growing any of it. All
// NodeIDs handed out before the Reset are invalidated.
func (a *Arena) Reset() {
	a.nodes = append(a.nodes[:0], arenaNode{op: OpFalse}, arenaNode{op: OpTrue})
	a.kids = a.kids[:0]
	a.vars = a.vars[:0]
	clear(a.varIDs)
	clear(a.intern)
	// Bumping the generation invalidates every memo entry in O(1); the
	// memo/memoGen tables keep their capacity for the next tenant.
	a.gen++
	a.scratch = a.scratch[:0]
	a.substKids = a.substKids[:0]
}

// Reserve pre-grows the arena's node, operand and memo storage for about n
// additional nodes. Bulk importers with a size estimate in hand (Solve
// interning a whole round's triplets) call it once up front instead of
// paying repeated append regrowth and per-Subst memo re-allocation.
func (a *Arena) Reserve(n int) {
	if need := len(a.nodes) + n; cap(a.nodes) < need {
		grown := make([]arenaNode, len(a.nodes), need)
		copy(grown, a.nodes)
		a.nodes = grown
	}
	if need := len(a.kids) + n; cap(a.kids) < need {
		grown := make([]NodeID, len(a.kids), need)
		copy(grown, a.kids)
		a.kids = grown
	}
	if need := len(a.nodes) + n; len(a.memo) < need {
		memo := make([]NodeID, need)
		copy(memo, a.memo)
		a.memo = memo
		gen := make([]uint32, need)
		copy(gen, a.memoGen)
		a.memoGen = gen
	}
}

// Const returns the id of the constant b.
func (a *Arena) Const(b bool) NodeID {
	if b {
		return IDTrue
	}
	return IDFalse
}

// Op reports the top-level operator of x.
func (a *Arena) Op(x NodeID) Op { return a.nodes[x].op }

// IsConst reports whether x is a constant.
func (a *Arena) IsConst(x NodeID) bool { return x == IDFalse || x == IDTrue }

// ConstValue returns the value of a constant node and whether x is constant.
func (a *Arena) ConstValue(x NodeID) (value, ok bool) {
	switch x {
	case IDTrue:
		return true, true
	case IDFalse:
		return false, true
	default:
		return false, false
	}
}

// VarOf returns the variable of an OpVar node; meaningless otherwise.
func (a *Arena) VarOf(x NodeID) Var { return a.vars[a.nodes[x].aux] }

// Operands returns the operand ids of an OpAnd/OpOr node, or the single
// operand of OpNot. The returned slice aliases arena storage and must not
// be modified or held across constructor calls.
func (a *Arena) Operands(x NodeID) []NodeID {
	n := a.nodes[x]
	switch n.op {
	case OpNot:
		return []NodeID{NodeID(n.aux)}
	case OpAnd, OpOr:
		return a.kids[n.aux : n.aux+n.nkid : n.aux+n.nkid]
	default:
		return nil
	}
}

// --- hashing / interning -------------------------------------------------

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h uint64, v uint32) uint64 {
	h ^= uint64(v)
	return h * fnvPrime
}

// Var interns a variable leaf.
func (a *Arena) Var(v Var) NodeID {
	if id, ok := a.varIDs[v]; ok {
		return id
	}
	id := NodeID(len(a.nodes))
	a.nodes = append(a.nodes, arenaNode{op: OpVar, aux: int32(len(a.vars))})
	a.vars = append(a.vars, v)
	a.varIDs[v] = id
	return id
}

// Not returns ¬x with constant folding and double-negation elimination.
func (a *Arena) Not(x NodeID) NodeID {
	switch x {
	case IDTrue:
		return IDFalse
	case IDFalse:
		return IDTrue
	}
	if n := a.nodes[x]; n.op == OpNot {
		return NodeID(n.aux)
	}
	h := fnvMix(fnvMix(fnvOffset, uint32(OpNot)), uint32(x))
	for _, id := range a.intern[h] {
		if n := a.nodes[id]; n.op == OpNot && NodeID(n.aux) == x {
			return id
		}
	}
	id := NodeID(len(a.nodes))
	a.nodes = append(a.nodes, arenaNode{op: OpNot, nkid: 1, aux: int32(x)})
	a.intern[h] = append(a.intern[h], id)
	return id
}

// And2 is the binary conjunction fast path (the shape Procedure bottomUp
// and compFm always produce).
func (a *Arena) And2(x, y NodeID) NodeID {
	if x == IDFalse || y == IDFalse {
		return IDFalse
	}
	if x == IDTrue {
		return y
	}
	if y == IDTrue {
		return x
	}
	if x == y {
		return x
	}
	var pair [2]NodeID
	pair[0], pair[1] = x, y
	return a.combine(OpAnd, pair[:])
}

// Or2 is the binary disjunction fast path.
func (a *Arena) Or2(x, y NodeID) NodeID {
	if x == IDTrue || y == IDTrue {
		return IDTrue
	}
	if x == IDFalse {
		return y
	}
	if y == IDFalse {
		return x
	}
	if x == y {
		return x
	}
	var pair [2]NodeID
	pair[0], pair[1] = x, y
	return a.combine(OpOr, pair[:])
}

// And returns the n-ary conjunction of xs with folding and flattening.
func (a *Arena) And(xs ...NodeID) NodeID {
	if len(xs) == 2 {
		return a.And2(xs[0], xs[1])
	}
	return a.combine(OpAnd, xs)
}

// Or returns the n-ary disjunction of xs with folding and flattening.
func (a *Arena) Or(xs ...NodeID) NodeID {
	if len(xs) == 2 {
		return a.Or2(xs[0], xs[1])
	}
	return a.combine(OpOr, xs)
}

// combine folds, flattens and dedupes the operand list, then interns the
// node. Because constructors maintain the invariant that an AND/OR child is
// never the same operator, flattening needs only one level. Duplicate
// operands are dropped by id — hash-consing makes "structurally equal"
// and "same id" the same thing, so this subsumes the pointer evaluator's
// duplicate-variable elimination.
func (a *Arena) combine(op Op, xs []NodeID) NodeID {
	absorb, identity := IDFalse, IDTrue
	if op == OpOr {
		absorb, identity = IDTrue, IDFalse
	}
	out := a.scratch[:0]
	var seen map[NodeID]bool // allocated only for wide operand lists
	add := func(x NodeID) bool {
		if x == absorb {
			return true
		}
		if x == identity {
			return false
		}
		if len(out) < 16 {
			for _, o := range out {
				if o == x {
					return false
				}
			}
		} else {
			if seen == nil {
				seen = make(map[NodeID]bool, 2*len(out))
				for _, o := range out {
					seen[o] = true
				}
			}
			if seen[x] {
				return false
			}
			seen[x] = true
		}
		out = append(out, x)
		return false
	}
	for _, x := range xs {
		if n := a.nodes[x]; n.op == op {
			for _, k := range a.kids[n.aux : n.aux+n.nkid] {
				if add(k) {
					a.scratch = out[:0]
					return absorb
				}
			}
			continue
		}
		if add(x) {
			a.scratch = out[:0]
			return absorb
		}
	}
	a.scratch = out[:0]
	switch len(out) {
	case 0:
		return identity
	case 1:
		return out[0]
	}
	h := fnvMix(fnvOffset, uint32(op))
	for _, k := range out {
		h = fnvMix(h, uint32(k))
	}
bucket:
	for _, id := range a.intern[h] {
		n := a.nodes[id]
		if n.op != op || int(n.nkid) != len(out) {
			continue
		}
		for i, k := range a.kids[n.aux : n.aux+n.nkid] {
			if k != out[i] {
				continue bucket
			}
		}
		return id
	}
	id := NodeID(len(a.nodes))
	a.nodes = append(a.nodes, arenaNode{op: op, nkid: int32(len(out)), aux: int32(len(a.kids))})
	a.kids = append(a.kids, out...)
	a.intern[h] = append(a.intern[h], id)
	return id
}

// CompFm is Procedure compFm over arena ids.
func (a *Arena) CompFm(x, y NodeID, op BinOp) NodeID {
	switch op {
	case NEG:
		return a.Not(x)
	case AND:
		return a.And2(x, y)
	case OR:
		return a.Or2(x, y)
	default:
		panic(fmt.Sprintf("boolexpr: unknown BinOp %d", op))
	}
}

// --- evaluation / substitution -------------------------------------------

// Eval evaluates x under a total assignment.
func (a *Arena) Eval(x NodeID, env func(Var) bool) bool {
	n := a.nodes[x]
	switch n.op {
	case OpTrue:
		return true
	case OpFalse:
		return false
	case OpVar:
		return env(a.vars[n.aux])
	case OpNot:
		return !a.Eval(NodeID(n.aux), env)
	case OpAnd:
		for _, k := range a.kids[n.aux : n.aux+n.nkid] {
			if !a.Eval(k, env) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range a.kids[n.aux : n.aux+n.nkid] {
			if a.Eval(k, env) {
				return true
			}
		}
		return false
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", n.op))
	}
}

// NewGen starts a fresh substitution environment generation, invalidating
// the Subst memo table in O(1). Call it whenever the environment changes;
// all Subst calls sharing a generation must share the environment.
func (a *Arena) NewGen() { a.gen++ }

// Subst substitutes variables for which lookup returns ok, folding
// constants as it goes. Results are memoized by (node id, generation):
// shared subformulas — which hash-consing makes common by construction —
// are rewritten once per generation instead of once per occurrence. This is
// what turns Procedure evalST's repeated unification of one fragment's
// vectors from O(entries · |formula|) re-walks into a single walk of the
// fragment's formula DAG.
func (a *Arena) Subst(x NodeID, lookup func(Var) (NodeID, bool)) NodeID {
	if len(a.memo) < len(a.nodes) {
		grown := make([]NodeID, len(a.nodes))
		copy(grown, a.memo)
		a.memo = grown
		grownGen := make([]uint32, len(a.nodes))
		copy(grownGen, a.memoGen)
		a.memoGen = grownGen
	}
	return a.subst(x, lookup)
}

func (a *Arena) subst(x NodeID, lookup func(Var) (NodeID, bool)) NodeID {
	n := a.nodes[x]
	switch n.op {
	case OpTrue, OpFalse:
		return x
	case OpVar:
		if g, ok := lookup(a.vars[n.aux]); ok {
			return g
		}
		return x
	}
	if a.memoGen[x] == a.gen {
		return a.memo[x]
	}
	var out NodeID
	switch n.op {
	case OpNot:
		k := a.subst(NodeID(n.aux), lookup)
		if k == NodeID(n.aux) {
			out = x
		} else {
			out = a.Not(k)
		}
	case OpAnd, OpOr:
		changed := false
		base := len(a.substKids)
		for i := int32(0); i < n.nkid; i++ {
			// Re-read the operand through a.kids each iteration: nested
			// subst calls may grow (and so reallocate) the kids slice.
			k := a.kids[n.aux+i]
			nk := a.subst(k, lookup)
			if nk != k {
				changed = true
			}
			a.substKids = append(a.substKids, nk)
		}
		ks := a.substKids[base:]
		switch {
		case !changed:
			out = x
		case n.op == OpAnd:
			out = a.combine(OpAnd, ks)
		default:
			out = a.combine(OpOr, ks)
		}
		a.substKids = a.substKids[:base]
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", n.op))
	}
	a.memo[x] = out
	a.memoGen[x] = a.gen
	return out
}

// Size returns the tree size of x (shared subformulas counted per
// occurrence), matching Formula.Size — the unit of the paper's
// communication bounds.
func (a *Arena) Size(x NodeID) int {
	n := a.nodes[x]
	switch n.op {
	case OpNot:
		return 1 + a.Size(NodeID(n.aux))
	case OpAnd, OpOr:
		s := 1
		for _, k := range a.kids[n.aux : n.aux+n.nkid] {
			s += a.Size(k)
		}
		return s
	default:
		return 1
	}
}

// Vars calls visit for every variable occurrence in x (duplicates included).
func (a *Arena) Vars(x NodeID, visit func(Var)) {
	n := a.nodes[x]
	switch n.op {
	case OpVar:
		visit(a.vars[n.aux])
	case OpNot:
		a.Vars(NodeID(n.aux), visit)
	case OpAnd, OpOr:
		for _, k := range a.kids[n.aux : n.aux+n.nkid] {
			a.Vars(k, visit)
		}
	}
}

// --- conversion to/from the pointer representation -----------------------

// Export converts x to an immutable pointer Formula. memo (keyed by id) may
// be shared across calls on the same arena so that shared subformulas
// export to shared pointers, keeping the exported DAG as compact as the
// arena's. Arena invariants match Formula invariants, so nodes are rebuilt
// directly without re-folding.
func (a *Arena) Export(x NodeID, memo map[NodeID]*Formula) *Formula {
	switch x {
	case IDFalse:
		return falseF
	case IDTrue:
		return trueF
	}
	if memo != nil {
		if f, ok := memo[x]; ok {
			return f
		}
	}
	n := a.nodes[x]
	var f *Formula
	switch n.op {
	case OpVar:
		f = &Formula{op: OpVar, v: a.vars[n.aux]}
	case OpNot:
		f = &Formula{op: OpNot, kids: []*Formula{a.Export(NodeID(n.aux), memo)}}
	case OpAnd, OpOr:
		ks := make([]*Formula, n.nkid)
		for i, k := range a.kids[n.aux : n.aux+n.nkid] {
			ks[i] = a.Export(k, memo)
		}
		f = &Formula{op: n.op, kids: ks}
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", n.op))
	}
	if memo != nil {
		memo[x] = f
	}
	return f
}

// Import interns a pointer Formula into the arena. memo (keyed by formula
// pointer) may be shared across calls so DAG-shaped inputs import in one
// pass; structurally equal formulas intern to the same id regardless.
func (a *Arena) Import(f *Formula, memo map[*Formula]NodeID) NodeID {
	switch f.op {
	case OpFalse:
		return IDFalse
	case OpTrue:
		return IDTrue
	}
	if memo != nil {
		if id, ok := memo[f]; ok {
			return id
		}
	}
	var id NodeID
	switch f.op {
	case OpVar:
		id = a.Var(f.v)
	case OpNot:
		id = a.Not(a.Import(f.kids[0], memo))
	case OpAnd, OpOr:
		ks := make([]NodeID, len(f.kids))
		for i, k := range f.kids {
			ks[i] = a.Import(k, memo)
		}
		id = a.combine(f.op, ks)
	default:
		panic(fmt.Sprintf("boolexpr: unknown Op %d", f.op))
	}
	if memo != nil {
		memo[f] = id
	}
	return id
}

// String renders x, for tests and debugging.
func (a *Arena) String(x NodeID) string { return a.Export(x, nil).String() }

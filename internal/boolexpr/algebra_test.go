package boolexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Algebraic laws, verified semantically (under every assignment of the
// generator's variable universe). The constructors simplify, so the laws
// must hold for the *values*, not the shapes.

func holdsForAll(t *testing.T, f, g *Formula) bool {
	t.Helper()
	// 5 variables → 32 assignments; exhaustive.
	n := len(genVars)
	for bits := 0; bits < 1<<n; bits++ {
		a := make(Assignment, n)
		for i, v := range genVars {
			a[v] = bits&(1<<i) != 0
		}
		if f.Eval(a.Total) != g.Eval(a.Total) {
			return false
		}
	}
	return true
}

func TestPropDeMorgan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := genFormula(r, 4), genFormula(r, 4)
		if !holdsForAll(t, Not(And(a, b)), Or(Not(a), Not(b))) {
			return false
		}
		return holdsForAll(t, Not(Or(a, b)), And(Not(a), Not(b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropAssociativityCommutativity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genFormula(r, 3), genFormula(r, 3), genFormula(r, 3)
		return holdsForAll(t, And(a, And(b, c)), And(And(a, b), c)) &&
			holdsForAll(t, Or(a, Or(b, c)), Or(Or(a, b), c)) &&
			holdsForAll(t, And(a, b), And(b, a)) &&
			holdsForAll(t, Or(a, b), Or(b, a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropDistributivityAbsorption(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := genFormula(r, 3), genFormula(r, 3), genFormula(r, 3)
		return holdsForAll(t, And(a, Or(b, c)), Or(And(a, b), And(a, c))) &&
			holdsForAll(t, Or(a, And(a, b)), a) &&
			holdsForAll(t, And(a, Or(a, b)), a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestPropDoubleNegationExcludedMiddle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := genFormula(r, 4)
		if !holdsForAll(t, Not(Not(a)), a) {
			return false
		}
		if v, ok := Or(a, Not(a)).ConstValue(); ok && !v {
			return false // if it folds, it must fold to true
		}
		return holdsForAll(t, Or(a, Not(a)), True()) &&
			holdsForAll(t, And(a, Not(a)), False())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestPropSubstComposition: substituting in two stages equals substituting
// the composed environment — the property that makes evalST's bottom-up
// order and LazyParBoX's incremental substitution interchangeable.
func TestPropSubstComposition(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genFormula(r, 5)
		full := genAssignment(r)
		first := make(Assignment)
		second := make(Assignment)
		for v, b := range full {
			if r.Intn(2) == 0 {
				first[v] = b
			} else {
				second[v] = b
			}
		}
		staged := g.Subst(first.Lookup).Subst(second.Lookup)
		direct := g.Subst(full.Lookup)
		av, aok := staged.ConstValue()
		bv, bok := direct.ConstValue()
		return aok && bok && av == bv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

package boolexpr

import (
	"bytes"
	"testing"
)

// fuzzSeeds are wire encodings of representative formulas (the shapes the
// codec tests exercise) plus malformed fragments, seeding the native fuzz
// targets below.
func fuzzSeeds() [][]byte {
	v := func(frag int32, vec VecKind, q int32) *Formula {
		return NewVar(Var{Frag: frag, Vec: vec, Q: q})
	}
	formulas := []*Formula{
		False(),
		True(),
		v(0, VecV, 0),
		Not(v(3, VecDV, 2)),
		And(v(1, VecV, 0), v(2, VecV, 0)),
		Or(v(1, VecV, 0), Not(And(v(2, VecDV, 1), v(3, VecV, 7)))),
		And(v(1, VecV, 0), Or(v(2, VecCV, 1), v(2, VecCV, 2)), Not(v(4, VecV, 3))),
	}
	seeds := make([][]byte, 0, len(formulas)+4)
	for _, f := range formulas {
		seeds = append(seeds, Encode(f))
	}
	seeds = append(seeds,
		[]byte{},                          // empty
		[]byte{wireNot},                   // truncated NOT
		[]byte{wireAnd, 0xff, 0xff},       // absurd operand count
		bytes.Repeat([]byte{wireNot}, 64), // NOT chain
	)
	return seeds
}

// FuzzDecodeFormula drives the pointer decoder, the slab decoder and the
// arena decoder with the same input: none may panic, all three must agree
// on accept/reject, and accepted inputs must survive a re-encode/re-decode
// round trip structurally intact.
func FuzzDecodeFormula(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		plain, errPlain := DecodeOne(data)

		slab := NewSlab()
		d := NewDecoderSlab(data, slab)
		slabbed, errSlab := d.Decode()
		if errSlab == nil && d.Remaining() != 0 {
			errSlab = ErrBadFormula
		}

		arena := NewArena()
		da := NewDecoder(data)
		id, errArena := da.DecodeID(arena)
		if errArena == nil && da.Remaining() != 0 {
			errArena = ErrBadFormula
		}

		if (errPlain == nil) != (errSlab == nil) || (errPlain == nil) != (errArena == nil) {
			t.Fatalf("decoders disagree: plain=%v slab=%v arena=%v", errPlain, errSlab, errArena)
		}
		if errPlain != nil {
			return
		}
		// Slab-decoded formulas must be structurally identical to the plain
		// decoder's (the slab constructors mirror the folding ones).
		if !plain.Equal(slabbed) {
			t.Fatalf("slab decode differs: %v vs %v", plain, slabbed)
		}
		// The arena speaks the same algebra: exporting must reproduce the
		// pointer formula.
		if exported := arena.Export(id, nil); !plain.Equal(exported) {
			t.Fatalf("arena decode differs: %v vs %v", plain, exported)
		}
		// Round trip: decoded formulas are constructor-normalized, so their
		// encoding must decode to an equal formula (encoding itself need not
		// be byte-identical to hostile input, which may be unnormalized).
		again, err := DecodeOne(Encode(plain))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !plain.Equal(again) {
			t.Fatalf("round trip changed the formula: %v vs %v", plain, again)
		}
	})
}

package boolexpr

import "fmt"

// BitVec is a packed bitset over the entries of a QList: bit i is the truth
// value of subquery i at some node. It is the "constant plane"
// representation of the per-node vectors (V, CV, DV) of Procedure bottomUp:
// as long as no virtual-node variable is in scope, every entry is a known
// boolean and the whole vector fits in ⌈n/64⌉ machine words, with the
// formula connectives collapsing to single bitwise instructions.
type BitVec []uint64

// NewBitVec returns a zeroed bitset with capacity for n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Get reports bit i.
func (b BitVec) Get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i to true.
func (b BitVec) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Assign sets bit i to v.
func (b BitVec) Assign(i int32, v bool) {
	if v {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Or folds other into b word-wise (b |= other). The two vectors must have
// the same length: mismatched lengths mean the caller is mixing vectors of
// different QLists, which would silently drop (or misattribute) subquery
// bits, so Or panics rather than truncate. This is lines 4-5 of Procedure
// bottomUp — folding a child's V into the parent's CV and its DV into the
// parent's DV — done in n/64 instructions instead of n formula
// compositions.
func (b BitVec) Or(other BitVec) {
	if len(other) != len(b) {
		panic(fmt.Sprintf("boolexpr: BitVec.Or length mismatch (%d words vs %d)", len(b), len(other)))
	}
	for i, w := range other {
		b[i] |= w
	}
}

// Clear zeroes the vector for reuse.
func (b BitVec) Clear() {
	for i := range b {
		b[i] = 0
	}
}

// ShiftWord returns word w of the vector shifted UP by d bit positions
// (bit i of the result is bit i-d of b; bits below d are zero). It is the
// word-level primitive of the fused lane kernels: a kernel op that routes
// every lane's operand bit A = i-d to lane i reads its source words through
// ShiftWord instead of gathering bit by bit. Shifts of any size are legal;
// words before the start of the vector read as zero.
func ShiftWord(b BitVec, w int, d int32) uint64 {
	i := w - int(d>>6)
	r := uint(d) & 63
	var hi, lo uint64
	if i >= 0 {
		hi = b[i]
	}
	if i > 0 {
		lo = b[i-1]
	}
	if r == 0 {
		return hi
	}
	return hi<<r | lo>>(64-r)
}

// ShiftWordOr is ShiftWord over the word-wise union a|b, without
// materializing the union: word w of ((a|b) << d). The kernels' //q case
// reads (DV ∨ V) this way — the descendant accumulator as the sequential
// per-lane loop would have observed it mid-iteration.
func ShiftWordOr(a, b BitVec, w int, d int32) uint64 {
	i := w - int(d>>6)
	r := uint(d) & 63
	var hi, lo uint64
	if i >= 0 {
		hi = a[i] | b[i]
	}
	if i > 0 {
		lo = a[i-1] | b[i-1]
	}
	if r == 0 {
		return hi
	}
	return hi<<r | lo>>(64-r)
}

package boolexpr

import "fmt"

// BitVec is a packed bitset over the entries of a QList: bit i is the truth
// value of subquery i at some node. It is the "constant plane"
// representation of the per-node vectors (V, CV, DV) of Procedure bottomUp:
// as long as no virtual-node variable is in scope, every entry is a known
// boolean and the whole vector fits in ⌈n/64⌉ machine words, with the
// formula connectives collapsing to single bitwise instructions.
type BitVec []uint64

// NewBitVec returns a zeroed bitset with capacity for n bits.
func NewBitVec(n int) BitVec { return make(BitVec, (n+63)/64) }

// Get reports bit i.
func (b BitVec) Get(i int32) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Set sets bit i to true.
func (b BitVec) Set(i int32) { b[i>>6] |= 1 << (uint(i) & 63) }

// Assign sets bit i to v.
func (b BitVec) Assign(i int32, v bool) {
	if v {
		b[i>>6] |= 1 << (uint(i) & 63)
	} else {
		b[i>>6] &^= 1 << (uint(i) & 63)
	}
}

// Or folds other into b word-wise (b |= other). The two vectors must have
// the same length: mismatched lengths mean the caller is mixing vectors of
// different QLists, which would silently drop (or misattribute) subquery
// bits, so Or panics rather than truncate. This is lines 4-5 of Procedure
// bottomUp — folding a child's V into the parent's CV and its DV into the
// parent's DV — done in n/64 instructions instead of n formula
// compositions.
func (b BitVec) Or(other BitVec) {
	if len(other) != len(b) {
		panic(fmt.Sprintf("boolexpr: BitVec.Or length mismatch (%d words vs %d)", len(b), len(other)))
	}
	for i, w := range other {
		b[i] |= w
	}
}

// Clear zeroes the vector for reuse.
func (b BitVec) Clear() {
	for i := range b {
		b[i] = 0
	}
}

package boolexpr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodecRoundTripBasics(t *testing.T) {
	x := NewVar(Var{Frag: 9, Vec: VecDV, Q: 300})
	y := NewVar(Var{Frag: 130, Vec: VecV, Q: 2})
	cases := []*Formula{
		True(), False(), x, y,
		Not(x),
		And(x, y), Or(x, Not(y)),
		Or(And(x, y), Not(And(x, Or(x, y)))),
	}
	for _, f := range cases {
		got, err := DecodeOne(Encode(f))
		if err != nil {
			t.Errorf("DecodeOne(%v): %v", f, err)
			continue
		}
		if !got.Equal(f) {
			t.Errorf("round trip of %v = %v", f, got)
		}
	}
}

// TestPropCodecRoundTrip: Decode(Encode(f)) is structurally identical for
// every constructor-normal formula, and EncodedSize matches the real length.
func TestPropCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := genFormula(r, 6)
		enc := Encode(g)
		if len(enc) != EncodedSize(g) {
			return false
		}
		got, err := DecodeOne(enc)
		if err != nil {
			return false
		}
		return got.Equal(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	fs := make([]*Formula, 17)
	for i := range fs {
		fs[i] = genFormula(r, 4)
	}
	d := NewDecoder(EncodeVector(fs))
	got, err := d.DecodeVector()
	if err != nil {
		t.Fatalf("DecodeVector: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("%d trailing bytes", d.Remaining())
	}
	if len(got) != len(fs) {
		t.Fatalf("got %d formulas, want %d", len(got), len(fs))
	}
	for i := range fs {
		if !got[i].Equal(fs[i]) {
			t.Errorf("entry %d: got %v, want %v", i, got[i], fs[i])
		}
	}
}

func TestEmptyVector(t *testing.T) {
	d := NewDecoder(EncodeVector(nil))
	got, err := d.DecodeVector()
	if err != nil || len(got) != 0 {
		t.Errorf("empty vector round trip: %v, %v", got, err)
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		buf  []byte
	}{
		{"empty", nil},
		{"unknown-opcode", []byte{99}},
		{"truncated-var", []byte{wireVar, 1}},
		{"bad-vec-kind", []byte{wireVar, 1, 7, 1}},
		{"truncated-not", []byte{wireNot}},
		{"and-count-too-big", []byte{wireAnd, 200, 1}},
		{"trailing-bytes", append(Encode(True()), 1)},
		{"and-missing-operand", []byte{wireAnd, 2, wireTrue}},
	}
	for _, c := range cases {
		if _, err := DecodeOne(c.buf); err == nil {
			t.Errorf("%s: DecodeOne succeeded, want error", c.name)
		}
	}
}

func TestDecodeVectorErrors(t *testing.T) {
	// Length prefix larger than the buffer must be rejected up front.
	d := NewDecoder([]byte{200, 200, 200})
	if _, err := d.DecodeVector(); err == nil {
		t.Error("oversized vector length accepted")
	}
}

func TestDecoderConcatenatedStream(t *testing.T) {
	x := NewVar(Var{Frag: 1, Vec: VecV, Q: 0})
	a := And(x, Not(NewVar(Var{Frag: 2, Vec: VecDV, Q: 3})))
	b := Or(x, True()) // folds to true
	buf := AppendEncoded(AppendEncoded(nil, a), b)
	d := NewDecoder(buf)
	g1, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := d.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Equal(a) {
		t.Errorf("first formula: got %v, want %v", g1, a)
	}
	if g2 != True() {
		t.Errorf("second formula: got %v, want true", g2)
	}
	if d.Remaining() != 0 {
		t.Errorf("%d bytes left", d.Remaining())
	}
}

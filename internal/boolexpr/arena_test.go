package boolexpr

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// randFormula builds a random pointer formula over a small variable pool,
// exercising every constructor.
func randFormula(r *rand.Rand, depth int) *Formula {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return Const(r.Intn(2) == 0)
		default:
			return NewVar(Var{Frag: int32(r.Intn(3)), Vec: VecKind(r.Intn(2) * 2), Q: int32(r.Intn(4))})
		}
	}
	switch r.Intn(3) {
	case 0:
		return Not(randFormula(r, depth-1))
	case 1:
		return And(randFormula(r, depth-1), randFormula(r, depth-1))
	default:
		return Or(randFormula(r, depth-1), randFormula(r, depth-1))
	}
}

// randBuildID replays the construction of f inside the arena through the
// arena's own constructors (not Import), checking constructor parity.
func randBuildID(a *Arena, f *Formula) NodeID {
	switch f.op {
	case OpFalse:
		return IDFalse
	case OpTrue:
		return IDTrue
	case OpVar:
		return a.Var(f.v)
	case OpNot:
		return a.Not(randBuildID(a, f.kids[0]))
	case OpAnd, OpOr:
		ks := make([]NodeID, len(f.kids))
		for i, k := range f.kids {
			ks[i] = randBuildID(a, k)
		}
		if f.op == OpAnd {
			return a.And(ks...)
		}
		return a.Or(ks...)
	default:
		panic("unreachable")
	}
}

// TestArenaHashConsing: building the same structure twice yields the same
// id — the O(1) structural equality the evaluator and view layer rely on.
func TestArenaHashConsing(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randFormula(r, 4)
		a := NewArena()
		id1 := randBuildID(a, g)
		id2 := randBuildID(a, g)
		if id1 != id2 {
			t.Logf("same build, different ids: %d vs %d for %v", id1, id2, g)
			return false
		}
		// Import must agree with direct construction too.
		if id3 := a.Import(g, nil); id3 != id1 {
			t.Logf("Import id %d != constructor id %d for %v", id3, id1, g)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestArenaExportEquivalence: Export inverts Import up to logical
// equivalence (the arena may normalize operand lists), verified by
// exhaustive evaluation over the variable set.
func TestArenaExportEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randFormula(r, 4)
		a := NewArena()
		back := a.Export(a.Import(g, nil), nil)
		vars := g.VarSet()
		for _, v := range back.VarSet() {
			found := false
			for _, w := range vars {
				if v == w {
					found = true
					break
				}
			}
			if !found {
				vars = append(vars, v)
			}
		}
		if len(vars) > 12 {
			return true // skip pathological variable explosions
		}
		for mask := 0; mask < 1<<len(vars); mask++ {
			env := make(Assignment, len(vars))
			for i, v := range vars {
				env[v] = mask&(1<<i) != 0
			}
			if g.Eval(env.Total) != back.Eval(env.Total) {
				t.Logf("round trip diverges under %v: %v vs %v", env, g, back)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestArenaSubstMatchesFormulaSubst: the generation-memoized substitution
// agrees with the pointer implementation under random partial environments.
func TestArenaSubstMatchesFormulaSubst(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randFormula(r, 5)
		env := make(Assignment)
		for _, v := range g.VarSet() {
			switch r.Intn(3) {
			case 0:
				env[v] = true
			case 1:
				env[v] = false
			}
		}
		want := g.Subst(env.Lookup)
		a := NewArena()
		id := a.Import(g, nil)
		a.NewGen()
		got := a.Subst(id, func(v Var) (NodeID, bool) {
			b, ok := env[v]
			if !ok {
				return IDFalse, false
			}
			return a.Const(b), true
		})
		// Substituting twice in the same generation must hit the memo and
		// return the identical id.
		if again := a.Subst(id, func(v Var) (NodeID, bool) {
			b, ok := env[v]
			if !ok {
				return IDFalse, false
			}
			return a.Const(b), true
		}); again != got {
			t.Logf("memoized resubstitution diverged: %d vs %d", again, got)
			return false
		}
		back := a.Export(got, nil)
		rest := want.VarSet()
		if len(rest) > 12 {
			return true
		}
		for mask := 0; mask < 1<<len(rest); mask++ {
			total := make(Assignment, len(rest))
			for i, v := range rest {
				total[v] = mask&(1<<i) != 0
			}
			if want.Eval(total.Total) != back.Eval(total.Total) {
				t.Logf("subst diverges: legacy %v arena %v (input %v env %v)", want, back, g, env)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestArenaCodecParity: the arena encoder emits byte-identical output to
// the pointer encoder for the same structure, and DecodeID round-trips.
func TestArenaCodecParity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randFormula(r, 4)
		a := NewArena()
		id := a.Import(g, nil)
		// Encode the EXPORTED formula with the pointer codec: both sides
		// describe the identical structure.
		want := Encode(a.Export(id, nil))
		got := a.AppendEncodedID(nil, id)
		if !bytes.Equal(want, got) {
			t.Logf("codec divergence for %v", g)
			return false
		}
		if a.EncodedSizeID(id) != len(got) {
			t.Logf("EncodedSizeID %d != len %d", a.EncodedSizeID(id), len(got))
			return false
		}
		b := NewArena()
		back, err := NewDecoder(got).DecodeID(b)
		if err != nil {
			t.Logf("DecodeID: %v", err)
			return false
		}
		if !bytes.Equal(b.AppendEncodedID(nil, back), got) {
			t.Logf("DecodeID round trip diverges for %v", g)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestDecoderDepthGuard: a hostile buffer of chained NOT opcodes must be
// rejected by both decoders instead of overflowing the stack, while a
// legitimate (modest) nesting depth still decodes.
func TestDecoderDepthGuard(t *testing.T) {
	hostile := bytes.Repeat([]byte{wireNot}, 1<<20)
	hostile = append(hostile, wireTrue)
	if _, err := DecodeOne(hostile); !errors.Is(err, ErrBadFormula) {
		t.Errorf("pointer decoder accepted a %d-deep NOT chain: %v", 1<<20, err)
	}
	if _, err := NewDecoder(hostile).DecodeID(NewArena()); !errors.Is(err, ErrBadFormula) {
		t.Errorf("arena decoder accepted a %d-deep NOT chain: %v", 1<<20, err)
	}

	okDepth := 1000
	buf := bytes.Repeat([]byte{wireNot}, okDepth)
	buf = append(buf, wireVar, 1, byte(VecV), 2)
	if _, err := DecodeOne(buf); err != nil {
		t.Errorf("pointer decoder rejected legitimate depth %d: %v", okDepth, err)
	}
	if _, err := NewDecoder(buf).DecodeID(NewArena()); err != nil {
		t.Errorf("arena decoder rejected legitimate depth %d: %v", okDepth, err)
	}

	// The guard resets between formulas of one stream: many shallow
	// formulas must not accumulate depth.
	var stream []byte
	for i := 0; i < maxDepth+10; i++ {
		stream = append(stream, wireNot, wireVar, 1, byte(VecV), 2)
	}
	d := NewDecoder(stream)
	for i := 0; i < maxDepth+10; i++ {
		if _, err := d.Decode(); err != nil {
			t.Fatalf("formula %d of a shallow stream rejected: %v", i, err)
		}
	}
}

// TestBitVec covers the packed bitset primitives.
func TestBitVec(t *testing.T) {
	b := NewBitVec(130)
	if len(b) != 3 {
		t.Fatalf("NewBitVec(130) has %d words, want 3", len(b))
	}
	for _, i := range []int32{0, 63, 64, 127, 129} {
		if b.Get(i) {
			t.Errorf("fresh bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Errorf("bit %d not set after Set", i)
		}
	}
	c := NewBitVec(130)
	c.Or(b)
	for _, i := range []int32{0, 63, 64, 127, 129} {
		if !c.Get(i) {
			t.Errorf("Or missed bit %d", i)
		}
	}
	c.Assign(64, false)
	if c.Get(64) {
		t.Error("Assign(64,false) left the bit set")
	}
	c.Clear()
	for _, i := range []int32{0, 63, 64, 127, 129} {
		if c.Get(i) {
			t.Errorf("Clear left bit %d", i)
		}
	}
}

// TestArenaConstantsAndFolding pins the constructor identities the
// evaluator's fast paths rely on.
func TestArenaConstantsAndFolding(t *testing.T) {
	a := NewArena()
	x := a.Var(Var{Frag: 1, Vec: VecV, Q: 0})
	y := a.Var(Var{Frag: 1, Vec: VecDV, Q: 1})
	cases := []struct {
		got, want NodeID
		name      string
	}{
		{a.Const(true), IDTrue, "Const(true)"},
		{a.Const(false), IDFalse, "Const(false)"},
		{a.And2(x, IDTrue), x, "x∧1"},
		{a.And2(IDFalse, x), IDFalse, "0∧x"},
		{a.Or2(x, IDFalse), x, "x∨0"},
		{a.Or2(IDTrue, x), IDTrue, "1∨x"},
		{a.And2(x, x), x, "x∧x"},
		{a.Or2(x, x), x, "x∨x"},
		{a.Not(a.Not(x)), x, "¬¬x"},
		{a.Not(IDTrue), IDFalse, "¬1"},
		{a.And2(a.And2(x, y), x), a.And2(x, y), "(x∧y)∧x flattens+dedupes"},
		{a.Or2(x, a.Or2(x, y)), a.Or2(x, y), "x∨(x∨y) flattens+dedupes"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("%s: got id %d (%s), want id %d (%s)", c.name, c.got, a.String(c.got), c.want, a.String(c.want))
		}
	}
}

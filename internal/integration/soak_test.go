// Package integration soak-tests the whole stack: random documents and
// fragmentations, interleaved queries (all algorithms), selections,
// counts, batches, content updates and re-fragmentations — with every
// step checked against a centralized oracle rebuilt from the live
// cluster state.
package integration

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/views"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// world is one live deployment under test.
type world struct {
	t      *testing.T
	r      *rand.Rand
	c      *cluster.Cluster
	view   *views.View
	engine func() *core.Engine // rebuilt from the view's current source tree
}

// oracle reassembles the document from the sites' live fragments and
// evaluates centrally.
func (w *world) oracle() *xmltree.Node {
	st := w.view.SourceTree()
	var frs []*frag.Fragment
	for _, id := range st.Fragments() {
		e, _ := st.Entry(id)
		site, ok := w.c.Site(e.Site)
		if !ok {
			w.t.Fatalf("missing site %s", e.Site)
		}
		fr, ok := site.Fragment(id)
		if !ok {
			w.t.Fatalf("site %s missing fragment %d", e.Site, id)
		}
		frs = append(frs, &frag.Fragment{ID: fr.ID, Parent: e.Parent, Root: fr.Root.Clone()})
	}
	forest, err := frag.FromFragments(frs, st.Root())
	if err != nil {
		w.t.Fatalf("oracle reassembly: %v", err)
	}
	doc, err := forest.Assemble()
	if err != nil {
		w.t.Fatal(err)
	}
	return doc
}

func (w *world) randomQuery() xpath.Expr {
	return xpath.RandomQuery(w.r, xpath.RandomSpec{AllowNot: true})
}

func (w *world) randomNodeIn(id xmltree.FragmentID) (*xmltree.Node, *xmltree.Node) {
	st := w.view.SourceTree()
	e, _ := st.Entry(id)
	site, _ := w.c.Site(e.Site)
	fr, ok := site.Fragment(id)
	if !ok {
		w.t.Fatalf("site %s missing fragment %d", e.Site, id)
	}
	var nodes []*xmltree.Node
	fr.Root.Walk(func(n *xmltree.Node) {
		if !n.Virtual {
			nodes = append(nodes, n)
		}
	})
	return fr.Root, nodes[w.r.Intn(len(nodes))]
}

func TestSoak(t *testing.T) {
	// VLDB'06 opened Sept 12, 2006 — plus a few neighbours for variety.
	for _, seed := range []int64{20060912, 20060913, 20060914, 20060915} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			soak(t, seed)
		})
	}
}

func soak(t *testing.T, seed int64) {
	const rounds = 40
	r := rand.New(rand.NewSource(seed))
	ctx := context.Background()

	// Build and deploy.
	tree := xmltree.RandomTree(r, xmltree.RandomSpec{Nodes: 120, MaxChildren: 5})
	forest := frag.NewForest(tree)
	if err := forest.SplitRandom(r, 5); err != nil {
		t.Fatal(err)
	}
	sites := []frag.SiteID{"S0", "S1", "S2", "S3"}
	assign := make(frag.Assignment)
	for _, id := range forest.IDs() {
		assign[id] = sites[r.Intn(len(sites))]
	}
	assign[forest.RootID()] = "S0"
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sites {
		site := c.AddSite(s)
		core.RegisterHandlers(site, c, c.Cost())
		views.RegisterHandlers(site, c)
	}
	// A standing view drives the update machinery and carries the
	// authoritative source tree across re-fragmentations.
	viewQuery := xpath.MustCompileString(`//a[b] || //c`)
	v, err := views.Materialize(ctx, c, "S0", eng.SourceTree(), viewQuery)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{t: t, r: r, c: c, view: v}
	w.engine = func() *core.Engine {
		return core.NewEngine(c, "S0", v.SourceTree(), c.Cost())
	}

	algos := core.Algorithms()
	for round := 0; round < rounds; round++ {
		action := r.Intn(10)
		st := v.SourceTree()
		ids := st.Fragments()
		id := ids[r.Intn(len(ids))]
		switch {
		case action < 4: // Boolean query, random algorithm
			q := w.randomQuery()
			prog := xpath.Compile(q)
			algo := algos[r.Intn(len(algos))]
			rep, err := w.engine().Run(ctx, algo, prog)
			if err != nil {
				t.Fatalf("round %d: %s(%q): %v", round, algo, q.String(), err)
			}
			want, _, err := eval.Evaluate(w.oracle(), prog)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Answer != want {
				t.Fatalf("round %d: %s(%q) = %v, want %v", round, algo, q.String(), rep.Answer, want)
			}
		case action < 5: // selection + count agree
			var e xpath.Expr
			for {
				e = w.randomQuery()
				if _, ok := e.(*xpath.Path); ok {
					break
				}
			}
			sp, err := xpath.CompileSelect(e)
			if err != nil {
				t.Fatal(err)
			}
			sel, err := w.engine().SelectParBoX(ctx, sp)
			if err != nil {
				t.Fatalf("round %d: select(%q): %v", round, e.String(), err)
			}
			cnt, err := w.engine().CountParBoX(ctx, sp)
			if err != nil {
				t.Fatal(err)
			}
			if int64(sel.Count) != cnt.Count {
				t.Fatalf("round %d: select %d != count %d for %q", round, sel.Count, cnt.Count, e.String())
			}
			want, err := xpath.SelectRaw(e, w.oracle())
			if err != nil {
				t.Fatal(err)
			}
			if sel.Count != len(want) {
				t.Fatalf("round %d: select(%q) = %d nodes, want %d", round, e.String(), sel.Count, len(want))
			}
		case action < 6: // batch of queries
			n := 1 + r.Intn(4)
			exprs := make([]xpath.Expr, n)
			for i := range exprs {
				exprs[i] = w.randomQuery()
			}
			prog, roots := xpath.CompileBatch(exprs)
			rep, err := w.engine().ParBoXBatch(ctx, prog, roots)
			if err != nil {
				t.Fatalf("round %d: batch: %v", round, err)
			}
			doc := w.oracle()
			for i, e := range exprs {
				want, _, err := eval.Evaluate(doc, xpath.Compile(e))
				if err != nil {
					t.Fatal(err)
				}
				if rep.Answers[i] != want {
					t.Fatalf("round %d: batch[%d] (%q) = %v, want %v", round, i, e.String(), rep.Answers[i], want)
				}
			}
		case action < 9: // content update through the view
			root, node := w.randomNodeIn(id)
			var op views.UpdateOp
			switch r.Intn(3) {
			case 0:
				op = views.UpdateOp{Op: views.OpInsert, Path: views.PathOf(node), Label: "a", Text: "x"}
			case 1:
				op = views.UpdateOp{Op: views.OpSetText, Path: views.PathOf(node), Text: fmt.Sprintf("t%d", round)}
			default:
				if node == root || len(node.VirtualNodes()) > 0 {
					op = views.UpdateOp{Op: views.OpSetText, Path: views.PathOf(node), Text: "y"}
				} else {
					op = views.UpdateOp{Op: views.OpDelete, Path: views.PathOf(node)}
				}
			}
			if _, err := v.Update(ctx, id, []views.UpdateOp{op}); err != nil {
				t.Fatalf("round %d: update: %v", round, err)
			}
			want, _, err := eval.Evaluate(w.oracle(), viewQuery)
			if err != nil {
				t.Fatal(err)
			}
			if v.Answer() != want {
				t.Fatalf("round %d: view %v, oracle %v", round, v.Answer(), want)
			}
		default: // re-fragmentation: split a random non-root node
			root, node := w.randomNodeIn(id)
			if node == root {
				continue
			}
			target := sites[r.Intn(len(sites))]
			if _, _, err := v.Split(ctx, id, views.PathOf(node), target); err != nil {
				t.Fatalf("round %d: split: %v", round, err)
			}
			want, _, err := eval.Evaluate(w.oracle(), viewQuery)
			if err != nil {
				t.Fatal(err)
			}
			if v.Answer() != want {
				t.Fatalf("round %d: view %v after split, oracle %v", round, v.Answer(), want)
			}
		}
	}

	// Finally, merge everything back into fewer fragments and verify once
	// more (bottom-up merges only).
	for {
		st := v.SourceTree()
		var mergeable []xmltree.FragmentID
		for _, id := range st.Fragments() {
			e, _ := st.Entry(id)
			if id != st.Root() && len(e.Children) == 0 {
				mergeable = append(mergeable, id)
			}
		}
		if len(mergeable) == 0 || st.Count() <= 2 {
			break
		}
		id := mergeable[r.Intn(len(mergeable))]
		e, _ := st.Entry(id)
		if _, err := v.Merge(ctx, e.Parent, id); err != nil {
			t.Fatalf("final merge of %d into %d: %v", id, e.Parent, err)
		}
	}
	want, _, err := eval.Evaluate(w.oracle(), viewQuery)
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer() != want {
		t.Fatalf("after merges: view %v, oracle %v", v.Answer(), want)
	}
}

// Deadline propagation over real sockets: an exhausted budget must stop
// the work at the serving sites, not just at the coordinator. The
// observable is the sites' versioned triplet caches — bottomUp work is
// exactly what populates them, so a run that was stopped server-side
// leaves every cache cold.
package integration

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/xmark"
	"repro/internal/xpath"
)

// TestDeadlineExpiredOverTCP pins the already-expired contract end to
// end over wire v2: a zero-budget deadline fails the run immediately
// with context.DeadlineExceeded, and the sites performed zero bottomUp
// steps — the next (warm-capable) run still misses every cache entry.
func TestDeadlineExpiredOverTCP(t *testing.T) {
	w := newTCPWorld(t, false)
	w.tcpEng.EnableTripletCache(true)
	prog := xpath.MustCompileString(xmark.Queries[8])

	expired, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	start := time.Now()
	_, err := w.tcpEng.ParBoX(expired, prog)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired run: err = %v, want context.DeadlineExceeded", err)
	}
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("expired run took %v — the deadline did not stop the work", took)
	}

	// Had any site run bottomUp during the expired call, its triplet
	// cache would now hold that (version, fingerprint) entry and this run
	// would report hits. All-miss proves the sites never started.
	rep, err := w.tcpEng.ParBoX(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits != 0 {
		t.Fatalf("run after expired call reported %d cache hits — the expired call did server-side work", rep.CacheHits)
	}
	if rep.CacheMisses == 0 {
		t.Fatal("run after expired call reported no cache misses (cache not exercised; observable broken)")
	}

	// Sanity: the observable detects work — a further warm run hits.
	rep, err = w.tcpEng.ParBoX(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CacheHits == 0 {
		t.Fatal("warm run reported zero hits (cache observable broken)")
	}
}

// TestDeadlineBudgetPropagates pins that a finite remaining budget
// reaches the sites over the wire: a budget far smaller than the
// document's evaluation time fails with the deadline error (typed by the
// server, not a client-side socket teardown), while a generous one
// succeeds.
func TestDeadlineBudgetPropagates(t *testing.T) {
	w := newTCPWorld(t, false)
	prog := xpath.MustCompileString(xmark.Queries[8])

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
	defer cancel()
	if _, err := w.tcpEng.ParBoX(ctx, prog); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("50µs budget: err = %v, want context.DeadlineExceeded", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Minute)
	defer cancel2()
	if _, err := w.tcpEng.ParBoX(ctx2, prog); err != nil {
		t.Fatalf("60s budget: %v", err)
	}
}

// Observability integration suite: span trees reconstructed across real
// TCP sites (the piggybacked server-side spans of wire protocol v2),
// and the metrics symmetry invariants that pin the histogram plumbing
// to the existing message accounting.
package integration

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/obs"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// TestSpanTreeOverTCP runs a traced ParBoX round against the 8-site TCP
// deployment and checks the reconstructed tree covers every remote hop:
// for each remotely visited site, a client-side rpc span AND the
// server-side handle/queue spans that rode back piggybacked on the v2
// response — all linked into one tree under one trace ID.
func TestSpanTreeOverTCP(t *testing.T) {
	w := newTCPWorld(t, false)
	col := obs.NewCollector()
	root := obs.Span{TraceID: obs.NewTraceID(), ID: obs.NewSpanID(), Site: "coord", Name: "test-root"}
	ctx := obs.WithTrace(context.Background(), obs.TraceContext{
		TraceID: root.TraceID, SpanID: root.ID, Collector: col,
	})
	prog := xpath.MustCompileString(xmark.Queries[8])
	rep, err := w.tcpEng.ParBoX(ctx, prog)
	if err != nil {
		t.Fatal(err)
	}
	col.Add(root)
	spans := col.Spans()
	if len(spans) < 2 {
		t.Fatalf("only %d spans collected", len(spans))
	}

	ids := make(map[uint64]obs.Span, len(spans))
	for _, sp := range spans {
		if sp.TraceID != root.TraceID {
			t.Fatalf("span %q carries trace %x, want %x", sp.Name, sp.TraceID, root.TraceID)
		}
		if _, dup := ids[sp.ID]; dup {
			t.Fatalf("duplicate span ID %x", sp.ID)
		}
		ids[sp.ID] = sp
	}
	// Connectivity: every span must reach the root via parent links.
	for _, sp := range spans {
		cur, hops := sp, 0
		for cur.ID != root.ID {
			p, ok := ids[cur.Parent]
			if !ok {
				t.Fatalf("span %q@%s is orphaned (parent %x unknown)", sp.Name, sp.Site, cur.Parent)
			}
			if hops++; hops > len(spans) {
				t.Fatalf("parent cycle reaching from span %q", sp.Name)
			}
			cur = p
		}
	}

	// Coverage: every remote visit produced both halves of the hop.
	kind := make(map[string]map[string]int) // site -> span name -> count
	for _, sp := range spans {
		if kind[sp.Site] == nil {
			kind[sp.Site] = make(map[string]int)
		}
		kind[sp.Site][sp.Name]++
	}
	coord := w.memEng.Coordinator()
	remoteVisits := 0
	for site, v := range rep.Visits {
		if site == coord || v == 0 {
			continue
		}
		remoteVisits += int(v)
		names := kind[string(site)]
		if names["rpc parbox.evalQual"] == 0 {
			t.Errorf("site %s: no client-side rpc span (%v)", site, names)
		}
		if names["handle parbox.evalQual"] == 0 {
			t.Errorf("site %s: no server-side handle span piggybacked back (%v)", site, names)
		}
		if names["queue"] == 0 {
			t.Errorf("site %s: no server-side queue span (%v)", site, names)
		}
		if names["bottomUp"] == 0 {
			t.Errorf("site %s: no bottomUp span (%v)", site, names)
		}
	}
	if remoteVisits < tcpWorldSites-1 {
		t.Fatalf("only %d remote visits — the deployment did not fan out", remoteVisits)
	}
	// The remote bottomUp spans must carry the step attribution.
	steps := int64(0)
	for _, sp := range spans {
		if sp.Name == "bottomUp" {
			if v, ok := sp.Attr("steps"); ok {
				steps += v
			}
		}
	}
	if steps == 0 {
		t.Error("bottomUp spans carry no step attribution")
	}
}

// TestUntracedCarriesNoSpans: the same TCP round without a trace
// context must piggyback nothing (the zero-cost-when-off contract).
func TestUntracedCarriesNoSpans(t *testing.T) {
	w := newTCPWorld(t, false)
	prog := xpath.MustCompileString(xmark.Queries[8])
	if _, err := w.tcpEng.ParBoX(context.Background(), prog); err != nil {
		t.Fatal(err)
	}
	// The sites' trace rings retain only traced requests.
	// (Ring access is indirect here: re-run traced and compare growth.)
	col := obs.NewCollector()
	ctx := obs.WithTrace(context.Background(), obs.TraceContext{
		TraceID: obs.NewTraceID(), SpanID: obs.NewSpanID(), Collector: col,
	})
	if _, err := w.tcpEng.ParBoX(ctx, prog); err != nil {
		t.Fatal(err)
	}
	if len(col.Spans()) == 0 {
		t.Fatal("traced round collected nothing — propagation is broken")
	}
}

// obsWorld is a small in-memory deployment the symmetry tests meter.
func obsWorld(t *testing.T) (*cluster.Cluster, *core.Engine) {
	t.Helper()
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       17,
		Parents:    xmark.StarParents(6),
		MBs:        xmark.EvenMBs(0.3, 6),
		NodesPerMB: 2500,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		t.Fatal(err)
	}
	assign := frag.Assignment{}
	for i := 0; i < 6; i++ {
		assign[xmltree.FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	c := cluster.New(cluster.DefaultCostModel())
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	return c, eng
}

// TestMetricsSymmetryInvariant pins the traffic accounting's pairwise
// symmetry after a mixed workload: every byte sent was received
// (global BytesIn == BytesOut, MessagesIn == MessagesOut), and in the
// ParBoX star shape the coordinator's outbound request traffic equals
// the callee sites' inbound traffic exactly.
func TestMetricsSymmetryInvariant(t *testing.T) {
	c, eng := obsWorld(t)
	ctx := context.Background()
	for _, src := range differentialQueries {
		prog := xpath.MustCompileString(src)
		for _, algo := range []core.Algorithm{core.AlgoParBoX, core.AlgoFullDist} {
			if _, err := eng.Run(ctx, algo, prog); err != nil {
				t.Fatalf("%v %q: %v", algo, src, err)
			}
		}
	}
	snap := c.Metrics().Snapshot()
	var bytesIn, bytesOut, msgsIn, msgsOut int64
	for _, s := range snap {
		bytesIn += s.BytesIn
		bytesOut += s.BytesOut
		msgsIn += s.MessagesIn
		msgsOut += s.MessagesOut
	}
	if bytesIn != bytesOut {
		t.Errorf("global bytes asymmetric: in %d, out %d", bytesIn, bytesOut)
	}
	if msgsIn != msgsOut {
		t.Errorf("global messages asymmetric: in %d, out %d", msgsIn, msgsOut)
	}
	if total := c.Metrics().TotalMessages(); msgsIn != total {
		t.Errorf("sum of MessagesIn %d != TotalMessages %d", msgsIn, total)
	}

	// Star-shape pairwise check on a fresh meter: with ParBoX only the
	// coordinator calls out, so its BytesOut must equal the callees'
	// summed BytesIn (and likewise for messages).
	c.Metrics().Reset()
	coord := eng.Coordinator()
	prog := xpath.MustCompileString(xmark.Queries[8])
	if _, err := eng.ParBoX(ctx, prog); err != nil {
		t.Fatal(err)
	}
	snap = c.Metrics().Snapshot()
	var calleeBytesIn, calleeMsgsIn int64
	for id, s := range snap {
		if id == coord {
			continue
		}
		calleeBytesIn += s.BytesIn
		calleeMsgsIn += s.MessagesIn
	}
	if co := snap[coord]; co.BytesOut != calleeBytesIn || co.MessagesOut != calleeMsgsIn {
		t.Errorf("coordinator out (bytes %d, msgs %d) != callees in (bytes %d, msgs %d)",
			co.BytesOut, co.MessagesOut, calleeBytesIn, calleeMsgsIn)
	}
}

// TestServiceHistogramCountInvariant pins the latency histogram to the
// message accounting: the per-site ServiceHist holds exactly one sample
// per remote call the site handled, so its count equals both Visits and
// MessagesIn, and the cluster-wide sample count equals half the total
// message count (each call is one request + one response).
func TestServiceHistogramCountInvariant(t *testing.T) {
	c, eng := obsWorld(t)
	ctx := context.Background()
	for _, src := range differentialQueries {
		if _, err := eng.ParBoX(ctx, xpath.MustCompileString(src)); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	snap := c.Metrics().Snapshot()
	var samples uint64
	for id, s := range snap {
		samples += s.ServiceHist.Count
		if uint64(s.Visits) != s.ServiceHist.Count {
			t.Errorf("site %s: %d visits but %d histogram samples", id, s.Visits, s.ServiceHist.Count)
		}
		if id != eng.Coordinator() && s.MessagesIn != s.Visits {
			t.Errorf("site %s: MessagesIn %d != Visits %d", id, s.MessagesIn, s.Visits)
		}
		if s.ServiceHist.Count > 0 {
			// The quantiles must be well-formed: p50 <= p95 <= p99, all
			// within the observed range.
			p50, p95, p99 := s.ServiceHist.Quantile(0.50), s.ServiceHist.Quantile(0.95), s.ServiceHist.Quantile(0.99)
			if p50 > p95 || p95 > p99 {
				t.Errorf("site %s: quantiles not monotone (p50 %d, p95 %d, p99 %d)", id, p50, p95, p99)
			}
		}
	}
	if total := c.Metrics().TotalMessages(); int64(samples)*2 != total {
		t.Errorf("histogram samples %d != TotalMessages/2 = %d", samples, total/2)
	}
}

// TestSiteStatsMatchClusterMetrics ties the sites' always-on SiteStats
// counter blocks (the /metrics and `parbox top` source) to the cluster
// meter: on non-coordinator sites every dispatch is a remote call, so
// the two accountings must agree exactly.
func TestSiteStatsMatchClusterMetrics(t *testing.T) {
	c, eng := obsWorld(t)
	ctx := context.Background()
	for _, src := range differentialQueries {
		if _, err := eng.ParBoX(ctx, xpath.MustCompileString(src)); err != nil {
			t.Fatalf("%q: %v", src, err)
		}
	}
	snap := c.Metrics().Snapshot()
	for _, id := range c.Sites() {
		if id == eng.Coordinator() {
			continue
		}
		site, ok := c.Site(id)
		if !ok {
			t.Fatalf("cluster lost site %s", id)
		}
		stats := site.Stats().Snapshot()
		m := snap[id]
		if stats.Visits != uint64(m.Visits) {
			t.Errorf("site %s: stats visits %d != metrics visits %d", id, stats.Visits, m.Visits)
		}
		if stats.Steps != uint64(m.Steps) {
			t.Errorf("site %s: stats steps %d != metrics steps %d", id, stats.Steps, m.Steps)
		}
		if want := stats.Visits - stats.Errors - stats.Sheds - stats.DeadlineExpired; stats.Latency.Count != want {
			t.Errorf("site %s: latency samples %d != successful dispatches %d",
				id, stats.Latency.Count, want)
		}
	}
}

// Update-churn smoke: real TCP sites under a sustained update stream
// with 1000 standing subscriptions fanned out over four queries. Every
// maintenance delta arrives server-pushed over the wire-v2 stream; the
// test pins (a) notification correctness — after each settled update the
// answers solved from pushed triplets must equal a freshly executed
// polled oracle — and (b) zero dropped deltas — the count received by
// the subscriber equals the sum of the sites' DeltasPushed counters.
// `make update-churn-smoke` runs exactly this file under -race.
package integration

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/views"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const churnSubscribers = 1000

// churnSub is one standing subscriber: a channel the dispatcher delivers
// answer flips into, and counters its drain goroutine owns exclusively.
type churnSub struct {
	query int
	ch    chan bool
	flips int
	last  bool
}

func TestUpdateChurnSubscriptions(t *testing.T) {
	// A small, fully scripted document: three child fragments whose
	// contents the update stream cycles through known shapes, so every
	// op's path is valid by construction on the site-side trees.
	root := xmltree.NewElement("r", "",
		xmltree.NewElement("a", ""),
		xmltree.NewElement("c", ""),
		xmltree.NewElement("d", "z"),
	)
	forest := frag.NewForest(root)
	kids := append([]*xmltree.Node{}, root.Children...)
	for _, child := range kids {
		if _, err := forest.Split(child); err != nil {
			t.Fatal(err)
		}
	}
	assign := frag.Assignment{}
	for i := 0; i < 4; i++ {
		assign[xmltree.FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	cost := cluster.DefaultCostModel()

	// Real listeners: every site serves wire v2 with the full core +
	// views handler set, like a parbox-site daemon.
	addrs := make(map[frag.SiteID]string, 4)
	var siteTrs []*cluster.TCPTransport
	var sites []*cluster.Site
	var coordLocal *cluster.Site
	for i := 0; i < 4; i++ {
		id := frag.SiteID(fmt.Sprintf("S%d", i))
		site := cluster.NewSite(id)
		for _, fid := range st.FragmentsAt(id) {
			fr, ok := forest.Fragment(fid)
			if !ok {
				t.Fatalf("forest missing fragment %d", fid)
			}
			site.AddFragment(&frag.Fragment{ID: fr.ID, Parent: fr.Parent, Root: fr.Root.Clone()})
		}
		siteTr := cluster.NewTCPTransport(nil)
		siteTr.Local(site)
		core.RegisterHandlers(site, siteTr, cost)
		views.RegisterHandlers(site, siteTr)
		srv, err := cluster.ServeWith(site, "127.0.0.1:0", cluster.ServeConfig{RequireV2: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[id] = srv.Addr()
		siteTrs = append(siteTrs, siteTr)
		sites = append(sites, site)
		if id == "S0" {
			coordLocal = site
		}
	}
	for _, siteTr := range siteTrs {
		siteTr.SetAddrs(addrs)
		t.Cleanup(func() { siteTr.Close() })
	}
	coordTr := cluster.NewTCPTransport(addrs)
	coordTr.Local(coordLocal)
	t.Cleanup(func() { coordTr.Close() })
	eng := core.NewEngine(coordTr, "S0", st, cost)
	ctx := context.Background()

	progs := []*xpath.Program{
		xpath.MustCompileString(`//b`),
		xpath.MustCompileString(`//a[b/text() = "x"]`),
		xpath.MustCompileString(`//c && //b`),
		xpath.MustCompileString(`//d[text() = "z"]`),
	}
	fpToQuery := make(map[uint64]int, len(progs))
	for i, p := range progs {
		fpToQuery[p.Fingerprint()] = i
	}

	// Subscribe to every site's delta stream before any program is
	// standing, so no push can precede an observer. Received deltas are
	// counted then forwarded with a blocking send — the zero-drop
	// discipline under test.
	var received atomic.Uint64
	deltaCh := make(chan []byte)
	drainDone := make(chan struct{})
	var stopOnce sync.Once
	stopDrain := func() { stopOnce.Do(func() { close(drainDone) }) }
	for _, id := range st.Sites() {
		cancel, err := coordTr.SubscribeDeltas(ctx, "S0", id, func(body []byte) {
			received.Add(1)
			b := append([]byte(nil), body...)
			select {
			case deltaCh <- b:
			case <-drainDone:
			}
		})
		if err != nil {
			t.Fatalf("subscribe %s: %v", id, err)
		}
		t.Cleanup(cancel)
	}
	t.Cleanup(stopDrain)

	// Register the four programs as standing at every site and build the
	// client-side solver state from the registration baselines.
	arena := boolexpr.NewArena()
	var stateMu sync.Mutex
	triplets := make([]map[xmltree.FragmentID]eval.ArenaTriplet, len(progs))
	versions := make([]map[xmltree.FragmentID]uint64, len(progs))
	answers := make([]bool, len(progs))
	for qi, p := range progs {
		triplets[qi] = make(map[xmltree.FragmentID]eval.ArenaTriplet)
		versions[qi] = make(map[xmltree.FragmentID]uint64)
		for _, id := range st.Sites() {
			items, err := views.RegisterProg(ctx, coordTr, "S0", id, p, st.FragmentsAt(id))
			if err != nil {
				t.Fatalf("register %q at %s: %v", p, id, err)
			}
			for _, it := range items {
				tr, err := eval.DecodeTripletArena(arena, it.Triplet)
				if err != nil {
					t.Fatal(err)
				}
				triplets[qi][it.Frag] = tr
				versions[qi][it.Frag] = it.Version
			}
		}
		ans, _, err := eval.SolveArena(st, arena, triplets[qi], p)
		if err != nil {
			t.Fatal(err)
		}
		answers[qi] = ans
	}

	// 1000 standing subscribers fanned out over the four queries; each
	// drain goroutine owns its counters, read back after shutdown.
	subs := make([]*churnSub, churnSubscribers)
	var wg sync.WaitGroup
	for i := range subs {
		s := &churnSub{query: i % len(progs), ch: make(chan bool, 4)}
		s.last = answers[s.query]
		subs[i] = s
		wg.Add(1)
		go func(s *churnSub) {
			defer wg.Done()
			for v := range s.ch {
				s.flips++
				s.last = v
			}
		}(s)
	}

	// The dispatcher: applies pushed deltas to the solver state and
	// fans answer flips out to every subscriber of the query (blocking
	// sends — a slow subscriber backpressures, nothing is dropped).
	dispatcherDone := make(chan struct{})
	go func() {
		defer close(dispatcherDone)
		for {
			var body []byte
			select {
			case body = <-deltaCh:
			case <-drainDone:
				return
			}
			d, err := views.DecodeDelta(body)
			if err != nil {
				t.Errorf("bad delta: %v", err)
				continue
			}
			qi, ok := fpToQuery[d.FP]
			if !ok {
				t.Errorf("delta for unknown program fp %x", d.FP)
				continue
			}
			stateMu.Lock()
			if d.Version <= versions[qi][d.Frag] {
				stateMu.Unlock()
				continue
			}
			versions[qi][d.Frag] = d.Version
			tr, err := eval.DecodeTripletArena(arena, d.Triplet)
			if err != nil {
				stateMu.Unlock()
				t.Errorf("delta triplet: %v", err)
				continue
			}
			triplets[qi][d.Frag] = tr
			ans, _, err := eval.SolveArena(st, arena, triplets[qi], progs[qi])
			if err != nil {
				stateMu.Unlock()
				t.Errorf("solve: %v", err)
				continue
			}
			flipped := ans != answers[qi]
			answers[qi] = ans
			stateMu.Unlock()
			if flipped {
				for _, s := range subs {
					if s.query == qi {
						s.ch <- ans
					}
				}
			}
		}
	}()

	// The update driver: a views.View over the same TCP transport.
	view, err := views.Materialize(ctx, coordTr, "S0", st, xpath.MustCompileString(`//r`))
	if err != nil {
		t.Fatal(err)
	}

	// One churn round; paths are valid by construction because every
	// round returns each fragment to its entry shape (a: [], c: [],
	// d: text only).
	type step struct {
		frag xmltree.FragmentID
		ops  []views.UpdateOp
	}
	round := []step{
		{1, []views.UpdateOp{{Op: views.OpInsert, Label: "b", Text: "x"}}},
		{2, []views.UpdateOp{{Op: views.OpInsert, Label: "b"}}},
		{1, []views.UpdateOp{{Op: views.OpSetText, Path: []int{0}, Text: "y"}}},
		{1, []views.UpdateOp{{Op: views.OpDelete, Path: []int{0}}}},
		{2, []views.UpdateOp{{Op: views.OpDelete, Path: []int{0}}}},
		{3, []views.UpdateOp{{Op: views.OpSetText, Path: nil, Text: "q"}}},
		{3, []views.UpdateOp{{Op: views.OpSetText, Path: nil, Text: "z"}}},
		{1, []views.UpdateOp{{Op: views.OpInsert, Label: "b", Text: "x"}}},
		{1, []views.UpdateOp{{Op: views.OpInsert, Label: "b", Text: "x"}}},
		{1, []views.UpdateOp{{Op: views.OpDelete, Path: []int{1}}}},
		{2, []views.UpdateOp{{Op: views.OpInsert, Label: "b"}}},
		{1, []views.UpdateOp{{Op: views.OpDelete, Path: []int{0}}}},
		{2, []views.UpdateOp{{Op: views.OpDelete, Path: []int{0}}}},
		{3, []views.UpdateOp{{Op: views.OpSetText, Path: nil, Text: "w"}}},
	}
	oracle := func(qi int) bool {
		rep, err := eng.ParBoX(ctx, progs[qi])
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		return rep.Answer
	}
	finalOracle := make([]bool, len(progs))
	updates := 0
	for roundNo := 0; roundNo < 3; roundNo++ {
		for si, s := range round {
			if _, err := view.Update(ctx, s.frag, s.ops); err != nil {
				t.Fatalf("round %d step %d: %v", roundNo, si, err)
			}
			updates++
			// The polled oracle this settled update must converge to.
			for qi := range progs {
				want := oracle(qi)
				finalOracle[qi] = want
				deadline := time.Now().Add(5 * time.Second)
				for {
					stateMu.Lock()
					got := answers[qi]
					stateMu.Unlock()
					if got == want {
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("round %d step %d query %d: pushed answer %v, polled oracle %v",
							roundNo, si, qi, got, want)
					}
					time.Sleep(time.Millisecond)
				}
			}
		}
	}

	// Zero dropped deltas: everything the sites pushed must have been
	// received. Pushes can trail the update response, so poll to quiesce.
	pushedTotal := func() uint64 {
		var n uint64
		for _, site := range sites {
			n += site.Stats().Snapshot().DeltasPushed
		}
		return n
	}
	deadline := time.Now().Add(5 * time.Second)
	for received.Load() != pushedTotal() {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got, want := received.Load(), pushedTotal(); got != want {
		t.Errorf("received %d deltas, sites pushed %d — dropped deltas", got, want)
	}
	if want := pushedTotal(); want == 0 {
		t.Error("no deltas pushed at all — the churn exercised nothing")
	}

	// Update-path health: the tiny virtual-free fragments must have been
	// maintained by spine recomputation, and the redundant steps of the
	// script must have been recognized as no-ops.
	var spine, noop uint64
	for _, site := range sites {
		snap := site.Stats().Snapshot()
		spine += snap.SpineRecomputes
		noop += snap.NoopUpdates
	}
	if spine == 0 {
		t.Error("no spine recomputes recorded across the churn")
	}
	if noop == 0 {
		t.Error("no no-op updates recorded (the script contains redundant edits)")
	}

	// Shut the fanout down and audit every subscriber: same flip count
	// for all subscribers of a query, and a final answer equal to the
	// oracle's.
	stopDrain()
	<-dispatcherDone
	for _, s := range subs {
		close(s.ch)
	}
	wg.Wait()
	flipsByQuery := make(map[int]int)
	for i, s := range subs {
		if s.last != finalOracle[s.query] {
			t.Fatalf("subscriber %d (query %d): final answer %v, oracle %v",
				i, s.query, s.last, finalOracle[s.query])
		}
		if n, seen := flipsByQuery[s.query]; seen {
			if s.flips != n {
				t.Fatalf("subscriber %d (query %d): %d flips, peers saw %d — uneven fanout",
					i, s.query, s.flips, n)
			}
		} else {
			flipsByQuery[s.query] = s.flips
		}
	}
	if updates != 3*len(round) {
		t.Fatalf("ran %d updates, want %d", updates, 3*len(round))
	}
	t.Logf("churn: %d updates, %d deltas pushed, %d spine recomputes, %d no-ops, flips by query %v",
		updates, pushedTotal(), spine, noop, flipsByQuery)
}

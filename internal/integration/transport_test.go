// Transport differential and soak suite: the same forest is deployed
// twice — on the in-process simulated LAN and on real TCP sites
// speaking wire protocol v2 — and the TCP deployment's answers and
// accounting are pinned to the in-memory transport across all six
// algorithms. A concurrent soak then hammers the v2 multiplexing under
// the race detector, and the scheduler fair-share invariants are pinned
// for coalesced serving. `make transport-soak` runs exactly this file.
package integration

import (
	"context"
	"fmt"
	"sync"
	"testing"

	parbox "repro"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/frag"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// tcpWorld is an 8-site forest served over real sockets plus the
// in-memory reference deployment of the same forest.
type tcpWorld struct {
	st     *frag.SourceTree
	tcpEng *core.Engine // coordinator over TCP (site S0 local, 7 remote)
	memEng *core.Engine // same document on the in-process cluster
	tcpTr  *cluster.TCPTransport
}

const tcpWorldSites = 8

// newTCPWorld builds the paired deployments. Each TCP site runs in
// process behind a real listener with the full handler set and its own
// peer transport (the recursive algorithms hop site-to-site), exactly
// like a parbox-site daemon.
func newTCPWorld(t *testing.T, forceV1 bool) *tcpWorld {
	t.Helper()
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       11,
		Parents:    xmark.StarParents(tcpWorldSites),
		MBs:        xmark.EvenMBs(0.8, tcpWorldSites),
		NodesPerMB: 2500,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		t.Fatal(err)
	}
	assign := frag.Assignment{}
	for i := 0; i < tcpWorldSites; i++ {
		assign[xmltree.FragmentID(i)] = frag.SiteID(fmt.Sprintf("S%d", i))
	}
	cost := cluster.DefaultCostModel()

	// In-memory reference.
	memCluster := cluster.New(cost)
	memEng, err := core.Deploy(memCluster, forest, assign)
	if err != nil {
		t.Fatal(err)
	}

	// TCP deployment of the same fragments (cloned: both deployments may
	// evaluate concurrently).
	st, err := frag.BuildSourceTree(forest, assign)
	if err != nil {
		t.Fatal(err)
	}
	coord := memEng.Coordinator()
	addrs := make(map[frag.SiteID]string, tcpWorldSites)
	var siteTrs []*cluster.TCPTransport
	var coordLocal *cluster.Site
	for i := 0; i < tcpWorldSites; i++ {
		id := frag.SiteID(fmt.Sprintf("S%d", i))
		site := cluster.NewSite(id)
		for _, fid := range st.FragmentsAt(id) {
			fr, ok := forest.Fragment(fid)
			if !ok {
				t.Fatalf("forest missing fragment %d", fid)
			}
			site.AddFragment(&frag.Fragment{ID: fr.ID, Parent: fr.Parent, Root: fr.Root.Clone()})
		}
		siteTr := cluster.NewTCPTransport(nil)
		siteTr.Local(site)
		core.RegisterHandlers(site, siteTr, cost)
		srv, err := cluster.ServeWith(site, "127.0.0.1:0", cluster.ServeConfig{RequireV2: !forceV1})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[id] = srv.Addr()
		siteTrs = append(siteTrs, siteTr)
		if id == coord {
			coordLocal = site
		}
	}
	// Bootstrap cycle: the sites learned their peers' addresses only
	// after every listener was bound.
	for _, siteTr := range siteTrs {
		siteTr.SetAddrs(addrs)
		siteTr.ForceV1 = forceV1
		t.Cleanup(func() { siteTr.Close() })
	}
	coordTr := cluster.NewTCPTransport(addrs)
	coordTr.ForceV1 = forceV1
	// The coordinator reads its own fragments in process, as the
	// in-memory deployment does — local work stays free on both sides,
	// so the byte/message/visit counters must match exactly.
	coordTr.Local(coordLocal)
	t.Cleanup(func() { coordTr.Close() })
	return &tcpWorld{
		st:     st,
		tcpEng: core.NewEngine(coordTr, coord, st, cost),
		memEng: memEng,
		tcpTr:  coordTr,
	}
}

var differentialQueries = []string{
	xmark.NamedQueries["BQ1-person-lookup"],
	xmark.NamedQueries["BQ2-bidder-increase"],
	xmark.NamedQueries["BQ3-closed-price"],
	xmark.NamedQueries["BQ5-absence"],
	xmark.Queries[8],
	xmark.Queries[23],
}

// TestTransportDifferential pins every algorithm's answer and
// accounting over v2 TCP to the in-memory transport: same payload
// codecs on both sides must mean identical Bytes, Messages, TotalSteps
// and Visits (SimTime is excluded — TCP measures real network time
// where the in-process cluster models it).
func TestTransportDifferential(t *testing.T) {
	w := newTCPWorld(t, false)
	ctx := context.Background()
	for _, src := range differentialQueries {
		prog := xpath.MustCompileString(src)
		for _, algo := range core.Algorithms() {
			memRep, err := w.memEng.Run(ctx, algo, prog)
			if err != nil {
				t.Fatalf("%v mem %q: %v", algo, src, err)
			}
			tcpRep, err := w.tcpEng.Run(ctx, algo, prog)
			if err != nil {
				t.Fatalf("%v tcp %q: %v", algo, src, err)
			}
			if tcpRep.Answer != memRep.Answer {
				t.Errorf("%v %q: answer tcp=%v mem=%v", algo, src, tcpRep.Answer, memRep.Answer)
			}
			if tcpRep.Bytes != memRep.Bytes {
				t.Errorf("%v %q: bytes tcp=%d mem=%d", algo, src, tcpRep.Bytes, memRep.Bytes)
			}
			if tcpRep.Messages != memRep.Messages {
				t.Errorf("%v %q: messages tcp=%d mem=%d", algo, src, tcpRep.Messages, memRep.Messages)
			}
			if tcpRep.TotalSteps != memRep.TotalSteps {
				t.Errorf("%v %q: steps tcp=%d mem=%d", algo, src, tcpRep.TotalSteps, memRep.TotalSteps)
			}
			if len(tcpRep.Visits) != len(memRep.Visits) {
				t.Errorf("%v %q: visit map tcp=%v mem=%v", algo, src, tcpRep.Visits, memRep.Visits)
			} else {
				for site, v := range memRep.Visits {
					if tcpRep.Visits[site] != v {
						t.Errorf("%v %q: visits[%s] tcp=%d mem=%d", algo, src, site, tcpRep.Visits[site], v)
					}
				}
			}
		}
	}
}

// TestTransportCacheCountersDifferential pins the triplet-cache hit and
// miss counters travelling the v2 wire to the in-memory transport: a
// cold round misses everywhere, a warm round hits everywhere, and both
// deployments report identical numbers.
func TestTransportCacheCountersDifferential(t *testing.T) {
	w := newTCPWorld(t, false)
	w.tcpEng.EnableTripletCache(true)
	w.memEng.EnableTripletCache(true)
	ctx := context.Background()
	prog := xpath.MustCompileString(xmark.Queries[8])
	for round := 0; round < 2; round++ {
		memRep, err := w.memEng.ParBoX(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		tcpRep, err := w.tcpEng.ParBoX(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		if tcpRep.CacheHits != memRep.CacheHits || tcpRep.CacheMisses != memRep.CacheMisses {
			t.Errorf("round %d: cache counters tcp=%d/%d mem=%d/%d",
				round, tcpRep.CacheHits, tcpRep.CacheMisses, memRep.CacheHits, memRep.CacheMisses)
		}
		if round == 1 {
			if tcpRep.CacheMisses != 0 {
				t.Errorf("warm round reported %d misses over TCP", tcpRep.CacheMisses)
			}
			if tcpRep.CacheHits == 0 {
				t.Error("warm round reported zero hits over TCP")
			}
		}
	}
}

// TestTransportSoak is the 64-concurrent-queries × 8-sites soak: every
// worker fires pipelined Boolean rounds at the TCP deployment (all six
// algorithms in rotation would multiply runtime; ParBoX plus the two
// recursive algorithms cover the one-shot, nested-hop and cached-state
// protocol shapes) and checks each answer against the precomputed
// reference. Run under -race this is the multiplexer's interleaving
// test.
func TestTransportSoak(t *testing.T) {
	w := newTCPWorld(t, false)
	ctx := context.Background()
	soakAlgos := []core.Algorithm{core.AlgoParBoX, core.AlgoFullDist, core.AlgoLazy}

	// Reference answers from the in-memory deployment.
	want := make(map[string]bool, len(differentialQueries))
	progs := make(map[string]*xpath.Program, len(differentialQueries))
	for _, src := range differentialQueries {
		prog := xpath.MustCompileString(src)
		progs[src] = prog
		rep, err := w.memEng.ParBoX(ctx, prog)
		if err != nil {
			t.Fatal(err)
		}
		want[src] = rep.Answer
	}

	const workers = 64
	rounds := 3
	if testing.Short() {
		rounds = 1
	}
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			src := differentialQueries[i%len(differentialQueries)]
			algo := soakAlgos[i%len(soakAlgos)]
			for r := 0; r < rounds; r++ {
				rep, err := w.tcpEng.Run(ctx, algo, progs[src])
				if err != nil {
					t.Errorf("worker %d %v: %v", i, algo, err)
					return
				}
				if rep.Answer != want[src] {
					t.Errorf("worker %d %v %q: answer %v, want %v", i, algo, src, rep.Answer, want[src])
					return
				}
			}
		}(i)
	}
	close(start)
	wg.Wait()
}

// TestSchedulerFairShareInvariant pins the coalescing scheduler's
// accounting under a 64-caller concurrent burst: within every shared
// round, the callers' fair shares of Bytes, Messages, TotalSteps and
// per-site Visits must sum exactly to the round's totals.
func TestSchedulerFairShareInvariant(t *testing.T) {
	root, siteRoots, err := xmark.BuildDoc(xmark.TreeSpec{
		Seed:       13,
		Parents:    xmark.StarParents(tcpWorldSites),
		MBs:        xmark.EvenMBs(0.4, tcpWorldSites),
		NodesPerMB: 2500,
	})
	if err != nil {
		t.Fatal(err)
	}
	forest, err := xmark.Fragment(root, siteRoots)
	if err != nil {
		t.Fatal(err)
	}
	assign := parbox.Assignment{}
	for i := 0; i < tcpWorldSites; i++ {
		assign[parbox.FragmentID(i)] = parbox.SiteID(fmt.Sprintf("S%d", i))
	}
	sys, err := parbox.Deploy(forest, assign, parbox.WithCoalescedServing(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	queries := make([]*parbox.Prepared, len(differentialQueries))
	for i, src := range differentialQueries {
		if queries[i], err = parbox.Prepare(src); err != nil {
			t.Fatal(err)
		}
	}
	const callers = 64
	results := make([]*parbox.Result, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			res, err := sys.Exec(context.Background(), queries[i%len(queries)])
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	close(start)
	wg.Wait()

	// Group callers by shared round (pointer identity) and check sums.
	type sums struct {
		bytes, messages, steps, hits, misses int64
		visits                               map[parbox.SiteID]int64
		callers                              int
	}
	rounds := make(map[*parbox.BatchResult]*sums)
	for i, res := range results {
		if res == nil {
			t.Fatalf("caller %d has no result", i)
		}
		if res.Sched == nil {
			t.Fatalf("caller %d bypassed the scheduler", i)
		}
		s := rounds[res.Sched.Round]
		if s == nil {
			s = &sums{visits: make(map[parbox.SiteID]int64)}
			rounds[res.Sched.Round] = s
		}
		s.bytes += res.Bytes
		s.messages += res.Messages
		s.steps += res.TotalSteps
		s.hits += res.CacheHits
		s.misses += res.CacheMisses
		for site, v := range res.Visits {
			s.visits[site] += v
		}
		s.callers++
	}
	for round, s := range rounds {
		if s.callers != 0 && round == nil {
			t.Fatal("nil round pointer")
		}
		if s.bytes != round.Bytes || s.messages != round.Messages || s.steps != round.TotalSteps {
			t.Errorf("round of %d callers: share sums (bytes %d, msgs %d, steps %d) != round totals (%d, %d, %d)",
				s.callers, s.bytes, s.messages, s.steps, round.Bytes, round.Messages, round.TotalSteps)
		}
		if s.hits != round.CacheHits || s.misses != round.CacheMisses {
			t.Errorf("round of %d callers: cache share sums %d/%d != round %d/%d",
				s.callers, s.hits, s.misses, round.CacheHits, round.CacheMisses)
		}
		for site, v := range round.Visits {
			if s.visits[site] != v {
				t.Errorf("round of %d callers: visits[%s] shares sum %d != round %d", s.callers, site, s.visits[site], v)
			}
		}
	}
	if stats := sys.SchedulerStats(); stats.Queries != callers {
		t.Errorf("scheduler served %d queries, want %d", stats.Queries, callers)
	}
}

// TestTransportDifferentialV1 re-runs the core differential over the
// legacy v1 path (ForceV1 transport against dual-stack servers): the
// compatibility path must stay answer- and accounting-identical too.
func TestTransportDifferentialV1(t *testing.T) {
	if testing.Short() {
		t.Skip("v1 compatibility differential skipped in -short")
	}
	w := newTCPWorld(t, true)
	ctx := context.Background()
	prog := xpath.MustCompileString(xmark.Queries[8])
	for _, algo := range core.Algorithms() {
		memRep, err := w.memEng.Run(ctx, algo, prog)
		if err != nil {
			t.Fatalf("%v mem: %v", algo, err)
		}
		tcpRep, err := w.tcpEng.Run(ctx, algo, prog)
		if err != nil {
			t.Fatalf("%v tcp/v1: %v", algo, err)
		}
		if tcpRep.Answer != memRep.Answer || tcpRep.Bytes != memRep.Bytes ||
			tcpRep.Messages != memRep.Messages || tcpRep.TotalSteps != memRep.TotalSteps {
			t.Errorf("%v: v1 (ans %v, bytes %d, msgs %d, steps %d) != mem (ans %v, bytes %d, msgs %d, steps %d)",
				algo, tcpRep.Answer, tcpRep.Bytes, tcpRep.Messages, tcpRep.TotalSteps,
				memRep.Answer, memRep.Bytes, memRep.Messages, memRep.TotalSteps)
		}
	}
}

package parbox

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/boolexpr"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/views"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Notification is one pushed subscription event: after an update to Frag
// (now at Version), the subscription's answer is Answer; Flipped marks
// the notifications where the answer actually changed. Every maintenance
// delta affecting the subscribed query produces a notification — a
// dissemination system filters on Flipped, a freshness monitor reads
// them all.
type Notification struct {
	Frag    FragmentID
	Version uint64
	Answer  bool
	Flipped bool
}

// Subscription is a standing Boolean XPath subscription: the query is
// registered at every site as a standing program, the sites keep its
// per-fragment triplets incrementally maintained across updates (spine
// recomputation, not full bottomUp), and whenever a fragment's root
// formulas flip, the site pushes a delta — over the wire on TCP
// deployments — from which the coordinator re-solves the equation system
// and notifies the subscriber. No polling anywhere: an update that
// cannot change the answer of a standing query costs that query nothing.
type Subscription struct {
	mgr   *subManager
	state *subState
	id    uint64
	ch    chan Notification
	done  chan struct{}

	once sync.Once
}

// C returns the subscription's notification channel. Deliveries block —
// the delta dispatcher waits for a slow subscriber rather than dropping
// notifications — so drain it promptly. Like time.Ticker's, the channel
// is never closed (closing would race in-flight deliveries): receive
// alongside Done, which closes when the subscription ends.
func (s *Subscription) C() <-chan Notification { return s.ch }

// Done closes when the subscription is cancelled (Cancel, System.Close);
// after that no further notifications are delivered.
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Answer returns the subscription's current answer.
func (s *Subscription) Answer() bool {
	s.state.mu.Lock()
	defer s.state.mu.Unlock()
	return s.state.ans
}

// Cancel detaches the subscription: Done closes and no further
// notifications are delivered (C stays open; see C). The last
// cancellation of a query drops the coordinator's solver state for it;
// the sites keep maintaining the standing program (registration is
// per-site state with no unregister), so a re-subscribe is cheap.
func (s *Subscription) Cancel() {
	s.once.Do(func() {
		s.mgr.mu.Lock()
		st := s.state
		st.mu.Lock()
		delete(st.subs, s.id)
		empty := len(st.subs) == 0
		st.mu.Unlock()
		if empty {
			delete(s.mgr.states, st.fp)
		}
		s.mgr.mu.Unlock()
		close(s.done)
	})
}

// subState is the coordinator's solver state for one subscribed program,
// shared by every subscription of that query (deduplicated by program
// fingerprint): the per-fragment triplets in their own arena, the current
// answer, and the per-fragment version high-water marks that deduplicate
// re-pushed deltas.
type subState struct {
	fp   uint64
	prog *xpath.Program

	mu       sync.Mutex
	st       *frag.SourceTree
	arena    *boolexpr.Arena
	triplets map[xmltree.FragmentID]eval.ArenaTriplet
	versions map[xmltree.FragmentID]uint64
	ans      bool

	subs map[uint64]*Subscription
}

// maybeCompact bounds arena growth across a long-lived subscription's
// deltas, exactly as views.View does for its arena.
func (st *subState) maybeCompact() {
	const compactAt = 1 << 16
	if st.arena.Len() < compactAt {
		return
	}
	fresh := boolexpr.NewArena()
	memo := make(map[boolexpr.NodeID]*boolexpr.Formula)
	reintern := make(map[*boolexpr.Formula]boolexpr.NodeID)
	conv := func(ids []boolexpr.NodeID) []boolexpr.NodeID {
		out := make([]boolexpr.NodeID, len(ids))
		for i, id := range ids {
			out[i] = fresh.Import(st.arena.Export(id, memo), reintern)
		}
		return out
	}
	for id, t := range st.triplets {
		st.triplets[id] = eval.ArenaTriplet{V: conv(t.V), CV: conv(t.CV), DV: conv(t.DV)}
	}
	st.arena = fresh
}

// subManager is the coordinator side of standing subscriptions: one per
// System, created by the first Subscribe. It holds one delta subscription
// per site (shared by every query) and one subState per subscribed
// program fingerprint; a single dispatcher goroutine serializes delta
// processing, so per-update coordinator work is one solve per program
// whose root actually flipped — independent of how many subscriptions
// share the query, and zero for untouched queries.
type subManager struct {
	sys *System

	// deltas carries raw pushed payloads from the per-site observers to
	// the dispatcher. Sends block when the dispatcher falls behind —
	// backpressure into the update path instead of dropped deltas.
	deltas  chan []byte
	done    chan struct{}
	stopped chan struct{} // closed when the dispatcher exits

	mu      sync.Mutex
	states  map[uint64]*subState
	cancels []func()
	nextID  uint64
	closed  bool
}

// deltaTransport returns the transport subscriptions ride: the wrapped
// transport when it supports push delivery, the in-process cluster
// otherwise.
func (s *System) deltaTransport() (cluster.Transport, cluster.DeltaSubscriber, error) {
	var tr cluster.Transport = s.cluster
	if s.trans != nil {
		tr = s.trans
	}
	if ds, ok := tr.(cluster.DeltaSubscriber); ok {
		return tr, ds, nil
	}
	// A wrapper without push support still carries the registration
	// calls; deltas flow from the underlying cluster directly.
	return tr, s.cluster, nil
}

// subMgr returns the System's subscription manager, starting it (site
// delta subscriptions plus the dispatcher) on first use.
func (s *System) subMgr(ctx context.Context) (*subManager, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.subs != nil {
		return s.subs, nil
	}
	_, ds, err := s.deltaTransport()
	if err != nil {
		return nil, err
	}
	m := &subManager{
		sys:     s,
		deltas:  make(chan []byte, 256),
		done:    make(chan struct{}),
		stopped: make(chan struct{}),
		states:  make(map[uint64]*subState),
	}
	coord := s.engine.Coordinator()
	for _, siteID := range s.engine.SourceTree().Sites() {
		cancel, err := ds.SubscribeDeltas(ctx, coord, siteID, m.onDelta)
		if err != nil {
			for _, c := range m.cancels {
				c()
			}
			return nil, fmt.Errorf("parbox: subscribing to %s: %w", siteID, err)
		}
		m.cancels = append(m.cancels, cancel)
	}
	go m.dispatch()
	s.subs = m
	return m, nil
}

// onDelta runs on the pushing site's goroutine (in-process) or the
// connection's reader goroutine (TCP): it only enqueues.
func (m *subManager) onDelta(payload []byte) {
	body := append([]byte(nil), payload...)
	select {
	case m.deltas <- body:
	case <-m.done:
	}
}

// dispatch serializes delta processing until close.
func (m *subManager) dispatch() {
	defer close(m.stopped)
	for {
		select {
		case body := <-m.deltas:
			m.process(body)
		case <-m.done:
			return
		}
	}
}

// process applies one pushed delta: route by program fingerprint, drop
// stale versions, re-solve, notify.
func (m *subManager) process(body []byte) {
	d, err := views.DecodeDelta(body)
	if err != nil {
		return // a malformed push can't name a subscriber to fail
	}
	m.mu.Lock()
	st := m.states[d.FP]
	m.mu.Unlock()
	if st == nil {
		return // no live subscription for this program (e.g. all cancelled)
	}
	st.mu.Lock()
	if v, ok := st.versions[d.Frag]; ok && d.Version <= v {
		st.mu.Unlock()
		return // replica re-push or reordered duplicate: already applied
	}
	st.versions[d.Frag] = d.Version
	st.maybeCompact()
	t, err := eval.DecodeTripletArena(st.arena, d.Triplet)
	if err != nil {
		st.mu.Unlock()
		return
	}
	flipped := false
	if old, ok := st.triplets[d.Frag]; !ok || !old.Equal(t) {
		st.triplets[d.Frag] = t
		ans, _, err := eval.SolveArena(st.st, st.arena, st.triplets, st.prog)
		if err == nil {
			flipped = ans != st.ans
			st.ans = ans
		}
	}
	n := Notification{Frag: d.Frag, Version: d.Version, Answer: st.ans, Flipped: flipped}
	subs := make([]*Subscription, 0, len(st.subs))
	for _, sub := range st.subs {
		subs = append(subs, sub)
	}
	st.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- n:
		case <-sub.done:
		case <-m.done:
			return
		}
	}
}

// close stops the dispatcher, cancels the site delta subscriptions and
// ends every subscription (Done closes).
func (m *subManager) close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	cancels := m.cancels
	m.cancels = nil
	var subs []*Subscription
	for _, st := range m.states {
		st.mu.Lock()
		for _, sub := range st.subs {
			subs = append(subs, sub)
		}
		st.mu.Unlock()
	}
	m.states = make(map[uint64]*subState)
	m.mu.Unlock()
	close(m.done)
	<-m.stopped // no delivery can be in flight past this point
	for _, c := range cancels {
		c()
	}
	for _, sub := range subs {
		sub.once.Do(func() { close(sub.done) })
	}
}

// Subscribe registers q as a standing subscription: the query is
// registered at every site holding a fragment (the sites thereafter keep
// its triplets incrementally maintained and push deltas when an update
// flips a fragment's root formulas), the baseline answer is solved from
// the registration's triplets, and subsequent flips arrive on the
// returned Subscription's channel without any polling. Subscriptions of
// the same query (by compiled-program fingerprint) share one solver
// state, so ten thousand subscribers to one query cost one solve per
// relevant update.
//
// Subscriptions track content updates (View.Update); a fragmentation
// change (Split/Merge) is not yet reflected in the subscription's source
// tree — cancel and re-subscribe around such operations.
func (s *System) Subscribe(ctx context.Context, q *Prepared) (*Subscription, error) {
	m, err := s.subMgr(ctx)
	if err != nil {
		return nil, err
	}
	prog := q.program()
	fp := prog.Fingerprint()

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, fmt.Errorf("parbox: system closed")
	}
	st, ok := m.states[fp]
	if !ok {
		st = &subState{
			fp:       fp,
			prog:     prog,
			arena:    boolexpr.NewArena(),
			triplets: make(map[xmltree.FragmentID]eval.ArenaTriplet),
			versions: make(map[xmltree.FragmentID]uint64),
			subs:     make(map[uint64]*Subscription),
		}
		m.states[fp] = st
	}
	m.nextID++
	id := m.nextID
	m.mu.Unlock()

	if !ok {
		if err := m.baseline(ctx, st); err != nil {
			m.mu.Lock()
			if len(st.subs) == 0 {
				delete(m.states, fp)
			}
			m.mu.Unlock()
			return nil, err
		}
	}
	sub := &Subscription{
		mgr: m, state: st, id: id,
		ch:   make(chan Notification, 16),
		done: make(chan struct{}),
	}
	st.mu.Lock()
	st.subs[id] = sub
	st.mu.Unlock()
	return sub, nil
}

// baseline registers st's program at every site and solves the initial
// answer from the returned per-fragment triplets — one visit per site,
// no data shipped, exactly the ParBoX round shape.
func (m *subManager) baseline(ctx context.Context, st *subState) error {
	tr, _, err := m.sys.deltaTransport()
	if err != nil {
		return err
	}
	eng := m.sys.eng()
	coord := eng.Coordinator()
	source := eng.SourceTree().Clone()
	bySite := make(map[SiteID][]FragmentID)
	for _, id := range source.Fragments() {
		e, ok := source.Entry(id)
		if !ok {
			return fmt.Errorf("parbox: fragment %d missing from source tree", id)
		}
		bySite[e.Site] = append(bySite[e.Site], id)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.st = source
	for siteID, ids := range bySite {
		items, err := views.RegisterProg(ctx, tr, coord, siteID, st.prog, ids)
		if err != nil {
			return fmt.Errorf("parbox: registering subscription at %s: %w", siteID, err)
		}
		for _, it := range items {
			t, err := eval.DecodeTripletArena(st.arena, it.Triplet)
			if err != nil {
				return err
			}
			st.triplets[it.Frag] = t
			if v, ok := st.versions[it.Frag]; !ok || it.Version > v {
				st.versions[it.Frag] = it.Version
			}
		}
	}
	ans, _, err := eval.SolveArena(st.st, st.arena, st.triplets, st.prog)
	if err != nil {
		return err
	}
	st.ans = ans
	return nil
}

package parbox

import (
	"sync"

	"repro/internal/xpath"
)

// Prepared is a query prepared once and executed many times: the paper's
// "compile once, ship whole" discipline surfaced as a prepared-statement
// artifact. Prepare parses the source a single time; every compiled form
// the execution modes need — the Boolean QList program, the peephole-
// optimized program, the selection automaton — is computed on first use
// and cached, so repeated System.Exec calls on the same Prepared never
// recompile anything. A Prepared is immutable after creation and safe for
// concurrent use by any number of Exec calls across any number of
// Systems.
type Prepared struct {
	src  string
	expr xpath.Expr

	// precompiled marks artifacts whose program is not Compile(expr) —
	// today only Optimized() forms. The coalescing scheduler fuses from
	// expr, which would silently discard such a program, so Exec runs
	// precompiled queries in their own round instead of coalescing them.
	precompiled bool

	progOnce sync.Once
	prog     *xpath.Program

	optOnce sync.Once
	opt     *Prepared

	selOnce sync.Once
	sel     *xpath.SelectProgram
	selErr  error
}

// Prepare parses an XBL query, e.g.
//
//	//stock[code = "GOOG" && sell = "376"]
//
// Conjunction is "&&"/"and", disjunction "||"/"or", negation "!"/"not";
// p = "str" abbreviates p/text() = "str"; label() = name tests the
// context node's label. See the package documentation for the grammar.
//
// A plain path query (no top-level Boolean connectives) can additionally
// run in ModeSelect and ModeCount; each compiled form (Boolean program,
// selection automaton) is built on the first Exec that needs it and
// cached on the Prepared.
func Prepare(src string) (*Prepared, error) {
	e, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Prepared{src: src, expr: e}, nil
}

// MustPrepare is Prepare panicking on error, for fixed query constants.
func MustPrepare(src string) *Prepared {
	q, err := Prepare(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the query's surface form.
func (q *Prepared) String() string { return q.src }

// QListSize returns |QList(q)|, the paper's query-size measure.
func (q *Prepared) QListSize() int { return q.program().QListSize() }

// program returns the cached Boolean QList program, compiling it on
// first use.
func (q *Prepared) program() *xpath.Program {
	q.progOnce.Do(func() {
		if q.prog == nil {
			p := xpath.Compile(q.expr)
			p.Source = q.src
			q.prog = p
		}
	})
	return q.prog
}

// Optimized returns a semantically identical prepared query whose QList
// has been peephole-minimized (redundant ε-filters, identity
// conjunctions, double negations removed). Smaller QLists mean
// proportionally less work at every node of every fragment. The optimized
// form is computed once and cached.
func (q *Prepared) Optimized() *Prepared {
	q.optOnce.Do(func() {
		// prog is pre-filled; program()'s nil check keeps it.
		q.opt = &Prepared{src: q.src, expr: q.expr, prog: q.program().Optimize(), precompiled: true}
	})
	return q.opt
}

// selectProgram returns the cached selection automaton, compiling it on
// first use. Queries that are not plain paths report
// xpath.ErrNotSelection.
func (q *Prepared) selectProgram() (*xpath.SelectProgram, error) {
	q.selOnce.Do(func() {
		q.sel, q.selErr = xpath.CompileSelect(q.expr)
	})
	return q.sel, q.selErr
}

// Query is the former name of the Prepared artifact.
//
// Deprecated: use Prepared.
type Query = Prepared

// ParseQuery parses an XBL query.
//
// Deprecated: use Prepare, which documents the grammar and caches every
// compiled form.
func ParseQuery(src string) (*Query, error) { return Prepare(src) }

// MustQuery is ParseQuery panicking on error.
//
// Deprecated: use MustPrepare.
func MustQuery(src string) *Query { return MustPrepare(src) }

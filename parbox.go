// Package parbox is a Go implementation of ParBoX — distributed evaluation
// of Boolean XPath queries over fragmented XML documents by partial
// evaluation — reproducing Buneman, Cong, Fan and Kementsietsidis, "Using
// Partial Evaluation in Distributed Query Evaluation", VLDB 2006.
//
// The idea: a document tree is decomposed into fragments stored at
// different sites; a Boolean XPath query is shipped whole to every site,
// which partially evaluates it over its fragments in parallel, treating
// the values at virtual nodes (pointers to remote sub-fragments) as
// Boolean variables. Each site returns compact Boolean formulas — not
// data — and the coordinator solves the resulting system of equations.
// Every site is visited exactly once and total network traffic is
// O(|q|·card(F)), independent of document size.
//
// # Quick start
//
//	doc, _ := parbox.ParseXMLString(`<a><b/><c>hi</c></a>`)
//	forest := parbox.NewForest(doc)
//	forest.Split(doc.Children[0]) // fragment the <b/> subtree
//	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})
//	q, _ := parbox.Prepare(`//b && //c[text() = "hi"]`)
//	res, _ := sys.Exec(context.Background(), q)
//	fmt.Println(res.Answer)
//
// Prepare compiles a query once; System.Exec is the single execution
// entry point, configured with functional options:
//
//	sys.Exec(ctx, q, parbox.WithAlgorithm(parbox.AlgoFullDist)) // pick an algorithm
//	sys.Exec(ctx, q, parbox.WithMode(parbox.ModeSelect))        // locate matching nodes
//	sys.Exec(ctx, q, parbox.WithMode(parbox.ModeCount))         // count them, traffic-free
//	sys.Exec(ctx, q, parbox.WithBatch(q2, q3))                  // many queries, one round
//	sys.Exec(ctx, q, parbox.WithMode(parbox.ModeMaterialize))   // standing view (Result.View)
//	sys.Exec(ctx, q, parbox.WithTimeout(time.Second), parbox.WithTrace(os.Stderr))
//
// Exec is safe for concurrent use: many calls, of any mix of modes and
// algorithms, may run against one System at once. Six algorithms are
// available (AlgoParBoX, AlgoNaiveCentralized, AlgoNaiveDistributed,
// AlgoHybrid, AlgoFullDist, AlgoLazy); ParseAlgorithm maps their surface
// names, Algorithms lists them.
package parbox

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/views"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Node is one node of an XML document tree; see NewElement, ParseXML and
// the mutation helpers on the type.
type Node = xmltree.Node

// FragmentID identifies a fragment of a distributed document.
type FragmentID = xmltree.FragmentID

// Forest is a fragmented document: fragments linked by virtual nodes.
type Forest = frag.Forest

// SiteID names a site of the cluster.
type SiteID = frag.SiteID

// Assignment maps fragments to sites (the paper's function h).
type Assignment = frag.Assignment

// SourceTree is S_T: where each fragment lives and how fragments nest —
// the only structure the algorithms need.
type SourceTree = frag.SourceTree

// Report is the outcome and accounting of one distributed Boolean
// evaluation.
type Report = core.Report

// CostModel parameterizes the simulated LAN and CPU speeds.
type CostModel = cluster.CostModel

// MaintenanceCost is the accounting of one view-maintenance operation.
type MaintenanceCost = views.MaintenanceCost

// UpdateOp is a primitive content update (insert/delete/set-text) for
// incremental view maintenance.
type UpdateOp = views.UpdateOp

// Update operation kinds.
const (
	OpInsert  = views.OpInsert
	OpDelete  = views.OpDelete
	OpSetText = views.OpSetText
)

// Algorithm identifies one of the implemented evaluation algorithms; pass
// one to WithAlgorithm. The zero value is AlgoParBoX.
type Algorithm = core.Algorithm

// The implemented algorithms.
const (
	AlgoParBoX           = core.AlgoParBoX
	AlgoNaiveCentralized = core.AlgoNaiveCentralized
	AlgoNaiveDistributed = core.AlgoNaiveDistributed
	AlgoHybrid           = core.AlgoHybrid
	AlgoFullDist         = core.AlgoFullDist
	AlgoLazy             = core.AlgoLazy
)

// Algorithms lists every implemented algorithm.
func Algorithms() []Algorithm { return core.Algorithms() }

// ParseAlgorithm maps an algorithm's surface name ("parbox", "central",
// "distrib", "hybrid", "fulldist", "lazy") to its Algorithm; the error of
// an unknown name lists the valid set.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// NewElement builds an element node with the given label, text content and
// children.
func NewElement(label, text string, children ...*Node) *Node {
	return xmltree.NewElement(label, text, children...)
}

// ParseXML reads an XML document.
func ParseXML(r io.Reader) (*Node, error) { return xmltree.ParseXML(r) }

// ParseXMLString parses an XML document from a string.
func ParseXMLString(s string) (*Node, error) { return xmltree.ParseXMLString(s) }

// WriteXML serializes a document tree as XML.
func WriteXML(w io.Writer, n *Node) error { return xmltree.WriteXML(w, n) }

// NewForest wraps a document as a single-fragment forest; use
// Forest.Split to fragment it further.
func NewForest(root *Node) *Forest { return frag.NewForest(root) }

// EvaluateLocal evaluates the query at the root of a complete
// (unfragmented) document — the paper's optimal centralized algorithm,
// O(|T|·|q|).
func EvaluateLocal(root *Node, q *Prepared) (bool, error) {
	ans, _, err := eval.Evaluate(root, q.program())
	return ans, err
}

// Option configures Deploy.
type Option func(*options)

type options struct {
	cost           cluster.CostModel
	coalesce       bool
	coalesceWindow time.Duration
	coalesceLanes  int
	tripletCache   bool
	// dataDir, when set, roots one durable fragment store per site
	// (WithDurability); residentLimit bounds each site's in-memory
	// fragment table and syncWrites fsyncs every WAL append.
	dataDir       string
	residentLimit int
	syncWrites    bool
	maxInflight   int
	// replication/failover/rebalance configure the replica-aware serving
	// tier (WithReplication, WithFailover, WithRebalancing).
	replication int
	failover    bool
	serveOpts   serve.Options
	rebalance   bool
	rbOpts      serve.RebalanceOptions
	// wrapTransport, when set, wraps the cluster transport the engine and
	// serving tier call through — the fault-injection seam of the failover
	// tests (see withTransportWrapper).
	wrapTransport func(cluster.Transport) cluster.Transport
	// retryPol shapes the per-query retry discipline (WithRetryBudget);
	// hedging/hedgeDelay arm speculative duplicates (WithHedging) and
	// admission bounds per-site concurrent work (WithAdmissionLimit).
	retryPol   backoff.Policy
	hedging    bool
	hedgeDelay time.Duration
	admission  int
	// introspect, when non-empty, serves /metrics, /healthz, /tracez and
	// /debug/pprof on that address (WithIntrospection).
	introspect string
}

// WithCostModel sets the simulated LAN/CPU cost model (latency, bandwidth,
// steps per second, real-sleep mode).
func WithCostModel(m CostModel) Option {
	return func(o *options) { o.cost = m }
}

// WithCoalescedServing makes Boolean ParBoX Exec calls coalesce by
// default: concurrent calls are transparently grouped into shared rounds
// by the scheduler (see WithCoalescing; WithNoCoalesce opts a call out).
// window is how long an open admission window waits for more callers,
// lanes is the fused-QList budget that flushes a window early; zero or
// negative values pick the defaults (DefaultCoalesceWindow,
// DefaultCoalesceLanes).
func WithCoalescedServing(window time.Duration, lanes int) Option {
	return func(o *options) {
		o.coalesce = true
		o.coalesceWindow = window
		o.coalesceLanes = lanes
	}
}

// WithMaxInflight bounds how many site calls any single query run keeps
// in flight at once through the engine's scatter/gather layer (0, the
// default, is unbounded — every site of a round is contacted at once).
// Deployments with very wide fan-outs set it to cap per-run memory and
// socket pressure; the bound applies per run, so concurrent Exec calls
// each get their own window.
func WithMaxInflight(n int) Option {
	return func(o *options) { o.maxInflight = n }
}

// WithTripletCache enables the versioned per-fragment triplet cache at the
// sites: each site memoizes the encoded triplet of a fragment per
// (fragment version, program fingerprint), so a fragment unchanged since a
// program's last visit answers with zero bottomUp steps and the
// coordinator only re-solves the equation system. View maintenance
// (Update/Split/Merge) bumps the touched fragment's version, invalidating
// exactly that fragment's entries. Hit/miss counts appear in
// Result.CacheHits/CacheMisses and the cluster metrics.
//
// The cache changes per-call step accounting on repeated queries (cached
// fragments report zero computation), which is precisely its point — so it
// is opt-in, keeping the paper-reproduction experiment numbers untouched.
func WithTripletCache() Option {
	return func(o *options) { o.tripletCache = true }
}

// WithReplication makes Deploy store n copies of every fragment, spread
// round-robin over the assignment's sites starting at the fragment's
// assigned one. On its own it only provides placement choice (Replan);
// combined with WithFailover the serving tier routes every round to the
// best live replica and fails failed calls over to survivors.
func WithReplication(n int) Option {
	return func(o *options) { o.replication = n }
}

// WithFailover enables the replica-aware serving tier on a replicated
// deployment (WithReplication or DeployReplicated): per-site health
// tracking fed by probes and every engine call, per-round routing to the
// best live replica, and in-flight failover of failed site calls onto
// surviving replicas. A query loses no answers while every fragment has
// at least one live replica; when one has none, the call fails loudly
// with ErrFragmentUnavailable. Result.Failovers and ServeStats report
// the tier's work; Health reports per-site state.
func WithFailover() Option {
	return func(o *options) { o.failover = true }
}

// WithRebalancing arms the serving tier's live rebalancer (requires
// WithFailover): every interval it compares per-site traffic and
// migrates a hot fragment onto an underloaded replica through the
// ordinary fragment codecs — journaled by the durable store where
// present and version-bumped, so stale cached triplets cannot survive
// the move. interval <= 0 leaves passes manual (System.Rebalance).
func WithRebalancing(interval time.Duration) Option {
	return func(o *options) {
		o.rebalance = true
		o.rbOpts.Interval = interval
	}
}

// WithRetryBudget caps the transparent retries any single query spends
// recovering from transient failures — whole-round retries (which sleep,
// exponential backoff with full jitter, floored at any server-provided
// retry-after hint) and per-call failover re-placements draw from the
// same budget, so a struggling deployment sees per-query retry traffic
// bounded by n instead of multiplying across layers. 0 picks the default
// (4); negative removes the cap (the pre-budget behavior, bounded only
// by the per-round site-exclusion sets).
func WithRetryBudget(n int) Option {
	return func(o *options) { o.retryPol.Budget = n }
}

// WithHedging arms speculative retries on a WithFailover deployment:
// a pure scatter call on fragments with a second live replica races a
// duplicate on the next-best site once the primary has been quiet past
// the hedge delay — the first answer wins and the loser is cancelled,
// cutting tail latency when a replica is slow but not dead. delay fixes
// the hedge timer; 0 arms it adaptively at the primary site's observed
// latency p95 (no hedge fires until the site has been observed). Only
// the winning attempt of a hedged pair is accounted; Result.Hedges and
// ServeStats report the hedging work.
func WithHedging(delay time.Duration) Option {
	return func(o *options) { o.hedging = true; o.hedgeDelay = delay }
}

// WithAdmissionLimit bounds every site to n concurrently admitted
// requests: work beyond the bound is shed immediately with a retryable
// overload error carrying a retry-after hint (honored by the retry
// backoff), so a burst degrades into bounded queueing plus fast sheds
// instead of unbounded pile-up. Health probes and the serving tier's
// control plane are exempt — a saturated site still answers probes.
// Shed counts appear in the cluster metrics (Sheds).
func WithAdmissionLimit(n int) Option {
	return func(o *options) { o.admission = n }
}

// withServeOptions overrides the serving tier's health/probe tuning —
// a test hook (deterministic tests disable the background prober and
// drive CheckHealth explicitly).
func withServeOptions(so serve.Options) Option {
	return func(o *options) { o.serveOpts = so }
}

// withTransportWrapper routes the engine and serving tier through a
// wrapped transport — the fault-injection seam of the failover tests.
func withTransportWrapper(w func(cluster.Transport) cluster.Transport) Option {
	return func(o *options) { o.wrapTransport = w }
}

// System is a deployed fragmented document: an in-process cluster of
// sites, each holding its assigned fragments and serving the ParBoX
// protocol. All methods are safe for concurrent use.
type System struct {
	cluster *cluster.Cluster

	// sched is the coalescing scheduler; coalesceDefault routes plain
	// Boolean Exec calls through it without WithCoalescing. cacheEnabled
	// and maxInflight record the WithTripletCache / WithMaxInflight
	// deployment choices so Replan can re-apply them to the swapped-in
	// engine.
	sched           *scheduler
	coalesceDefault bool
	cacheEnabled    bool
	maxInflight     int

	// stores holds the per-site durable fragment stores of a
	// WithDurability deployment (nil otherwise); Close/Checkpoint drain
	// them.
	stores map[SiteID]*store.Store

	// tier is the replica-aware serving tier of a WithFailover
	// deployment (nil otherwise); trans is the transport the engine calls
	// through when a test wrapped it (nil when the engine talks to the
	// cluster directly). Both are set at deployment and never change.
	tier  *serve.Tier
	trans cluster.Transport

	// retryPol is the deployment's per-query retry discipline
	// (WithRetryBudget), shared by the engine's Boolean rounds and the
	// facade's select/count round retries.
	retryPol backoff.Policy

	// obsRing retains recent traced Exec calls for /tracez; httpSrv and
	// httpLn are the introspection server of a WithIntrospection
	// deployment (all nil otherwise). Set at deployment, closed by Close.
	obsRing *obs.TraceRing
	httpSrv *http.Server
	httpLn  net.Listener

	// mu guards engine, which Replan swaps, and subs, which the first
	// Subscribe creates; forest/replicas are retained for Replan on
	// replicated deployments and never change.
	mu       sync.RWMutex
	engine   *core.Engine
	forest   *Forest
	replicas ReplicaMap
	subs     *subManager
}

// SchedulerStats returns the coalescing scheduler's cumulative counters
// (rounds run, queries served, flush reasons) since deployment.
func (s *System) SchedulerStats() SchedulerStats { return s.sched.stats() }

// eng returns the current engine; Exec reads it once per call, so a
// concurrent Replan affects only subsequent calls.
func (s *System) eng() *core.Engine {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine
}

// Deploy places a forest's fragments onto an in-process cluster per the
// assignment (every fragment must be assigned) and returns the system
// ready for queries. The coordinator is the site holding the root
// fragment.
func Deploy(forest *Forest, assign Assignment, opts ...Option) (*System, error) {
	o := options{cost: cluster.DefaultCostModel()}
	for _, opt := range opts {
		opt(&o)
	}
	if o.residentLimit > 0 && o.dataDir == "" {
		return nil, fmt.Errorf("parbox: WithResidentFragments requires WithDurability (evicted fragments must have a store to reload from)")
	}
	if o.replication > 1 {
		replicas, err := replicateAssignment(forest, assign, o.replication)
		if err != nil {
			return nil, err
		}
		// PlaceFirst keeps the caller's assignment as the primary copy.
		return deployReplicated(forest, replicas, PlaceFirst, o)
	}
	if o.failover {
		return nil, fmt.Errorf("parbox: WithFailover requires replicas (WithReplication(n >= 2) or DeployReplicated)")
	}
	if o.rebalance {
		return nil, fmt.Errorf("parbox: WithRebalancing requires WithFailover")
	}
	if o.hedging {
		return nil, fmt.Errorf("parbox: WithHedging requires WithFailover (a hedge needs a second live replica)")
	}
	c := cluster.New(o.cost)
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		return nil, err
	}
	for _, siteID := range eng.SourceTree().Sites() {
		site, _ := c.Site(siteID)
		views.RegisterHandlers(site, c)
		cluster.RegisterStatsHandler(site)
		if o.admission > 0 {
			site.SetAdmission(cluster.AdmissionLimits{MaxInflight: o.admission})
		}
	}
	eng.EnableTripletCache(o.tripletCache)
	eng.SetMaxInflight(o.maxInflight)
	eng.SetRetryPolicy(o.retryPol)
	s := &System{
		cluster: c, engine: eng, coalesceDefault: o.coalesce,
		cacheEnabled: o.tripletCache, maxInflight: o.maxInflight,
		retryPol: o.retryPol,
	}
	s.sched = newScheduler(s, o.coalesceWindow, o.coalesceLanes)
	if o.dataDir != "" {
		if err := s.attachStores(o); err != nil {
			return nil, err
		}
	}
	if o.introspect != "" {
		if err := s.startIntrospection(o.introspect); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// AddSite creates an additional (initially empty) site with the full
// protocol registered, e.g. as the target of a View.Split re-assignment.
func (s *System) AddSite(id SiteID) {
	site := s.cluster.AddSite(id)
	core.RegisterHandlers(site, s.cluster, s.cluster.Cost())
	views.RegisterHandlers(site, s.cluster)
	cluster.RegisterStatsHandler(site)
}

// Evaluate runs the query with the ParBoX algorithm and returns the
// Boolean answer.
//
// Deprecated: use Exec — Evaluate(ctx, q) is Exec(ctx, q) reading
// Result.Answer.
func (s *System) Evaluate(ctx context.Context, q *Prepared) (bool, error) {
	res, err := s.Exec(ctx, q)
	if err != nil {
		return false, err
	}
	return res.Answer, nil
}

// EvaluateWith runs the query with the given algorithm and returns the
// full report.
//
// Deprecated: use Exec with WithAlgorithm and read Result.Boolean.
func (s *System) EvaluateWith(ctx context.Context, algo Algorithm, q *Prepared) (Report, error) {
	res, err := s.Exec(ctx, q, WithAlgorithm(algo))
	if err != nil {
		return Report{}, err
	}
	return *res.Boolean, nil
}

// SelectionResult is the outcome of a distributed data-selection query.
type SelectionResult = core.SelectReport

// Select evaluates a data-selection path query (the Section 8 extension):
// the result identifies every selected node by its fragment and
// child-index path within that fragment.
//
// Deprecated: use Prepare once and Exec with WithMode(ModeSelect) — this
// wrapper re-prepares (and so recompiles) the query on every call.
func (s *System) Select(ctx context.Context, pathQuery string) (SelectionResult, error) {
	q, err := Prepare(pathQuery)
	if err != nil {
		return SelectionResult{}, err
	}
	res, err := s.Exec(ctx, q, WithMode(ModeSelect))
	if err != nil {
		return SelectionResult{}, err
	}
	return *res.Selection, nil
}

// BatchResult is the outcome of one batch evaluation round.
type BatchResult = core.BatchReport

// EvaluateBatch answers many Boolean queries with a single ParBoX round.
// An empty batch is answered for free: no round runs.
//
// Deprecated: use Exec with WithBatch and read Result.Answers.
func (s *System) EvaluateBatch(ctx context.Context, queries []*Prepared) (BatchResult, error) {
	if len(queries) == 0 {
		return BatchResult{}, nil
	}
	res, err := s.Exec(ctx, queries[0], WithBatch(queries[1:]...))
	if err != nil {
		return BatchResult{}, err
	}
	return *res.Batch, nil
}

// CountResult is the outcome of a distributed COUNT aggregation.
type CountResult = core.CountReport

// Count counts the nodes a path query selects without shipping their
// identities anywhere.
//
// Deprecated: use Prepare once and Exec with WithMode(ModeCount) — this
// wrapper re-prepares (and so recompiles) the query on every call.
func (s *System) Count(ctx context.Context, pathQuery string) (CountResult, error) {
	q, err := Prepare(pathQuery)
	if err != nil {
		return CountResult{}, err
	}
	res, err := s.Exec(ctx, q, WithMode(ModeCount))
	if err != nil {
		return CountResult{}, err
	}
	return *res.Counting, nil
}

// SourceTree returns the deployed document's source tree.
func (s *System) SourceTree() *SourceTree { return s.eng().SourceTree() }

// Coordinator returns the coordinating site (the root fragment's site).
func (s *System) Coordinator() SiteID { return s.eng().Coordinator() }

// TotalBytes returns the cumulative remote traffic since deployment (or
// the last ResetMetrics).
func (s *System) TotalBytes() int64 { return s.cluster.Metrics().TotalBytes() }

// Sheds returns the cumulative number of requests admission control shed
// since deployment (or the last ResetMetrics); zero without
// WithAdmissionLimit.
func (s *System) Sheds() int64 { return s.cluster.Metrics().TotalSheds() }

// DeadlineExpired returns the cumulative number of calls that hit a
// propagated deadline since deployment (or the last ResetMetrics).
func (s *System) DeadlineExpired() int64 { return s.cluster.Metrics().TotalDeadlineExpired() }

// ResetMetrics clears the cluster-wide accounting.
func (s *System) ResetMetrics() { s.cluster.Metrics().Reset() }

// MetricsTable renders the per-site accounting as a table.
func (s *System) MetricsTable() string { return s.cluster.Metrics().String() }

// View is a materialized, incrementally maintained Boolean XPath view.
type View struct {
	v *views.View
}

// Materialize computes and caches the query's answer as a view
// (Section 5): subsequent Answer calls are free; Update/Split/Merge
// maintain it with recomputation localized to the changed fragment.
//
// Deprecated: use Exec with WithMode(ModeMaterialize) and read
// Result.View.
func (s *System) Materialize(ctx context.Context, q *Prepared) (*View, error) {
	res, err := s.Exec(ctx, q, WithMode(ModeMaterialize))
	if err != nil {
		return nil, err
	}
	return res.View, nil
}

// Answer returns the cached answer.
func (v *View) Answer() bool { return v.v.Answer() }

// Update applies content updates to one fragment and incrementally
// maintains the answer; only that fragment's site is contacted.
func (v *View) Update(ctx context.Context, id FragmentID, ops []UpdateOp) (MaintenanceCost, error) {
	return v.v.Update(ctx, id, ops)
}

// Split moves the subtree at path (child indices from the fragment root)
// into a new fragment assigned to target; the answer is unaffected.
func (v *View) Split(ctx context.Context, id FragmentID, path []int, target SiteID) (FragmentID, MaintenanceCost, error) {
	return v.v.Split(ctx, id, path, target)
}

// Merge absorbs sub-fragment child into fragment id.
func (v *View) Merge(ctx context.Context, id, child FragmentID) (MaintenanceCost, error) {
	return v.v.Merge(ctx, id, child)
}

// PathOf computes the child-index path addressing a node within its
// fragment, for use with View.Update and View.Split.
func PathOf(node *Node) []int { return views.PathOf(node) }

// ReplicaMap lists, per fragment, every site holding a copy.
type ReplicaMap = core.ReplicaMap

// PlacementStrategy selects replicas before a query runs.
type PlacementStrategy = core.PlacementStrategy

// Replica placement strategies.
const (
	// PlaceFirst uses each fragment's first listed replica.
	PlaceFirst = core.PlaceFirst
	// PlaceMinSites minimizes the number of sites consulted.
	PlaceMinSites = core.PlaceMinSites
	// PlaceBalanced minimizes the largest per-site data share (the
	// paper's parallel-computation bound).
	PlaceBalanced = core.PlaceBalanced
)

// ErrFragmentUnavailable is returned (wrapped) when a query needs a
// fragment none of whose replicas is live: under WithFailover answers
// are exactly correct or loudly absent, never silently partial. Test
// with errors.Is.
var ErrFragmentUnavailable = core.ErrFragmentUnavailable

// SiteHealth is one site's health snapshot as the serving tier sees it.
type SiteHealth = serve.SiteStatus

// HealthState is a site's up/suspect/down classification.
type HealthState = serve.State

// The health states.
const (
	// SiteUp: serving normally, first-choice replica.
	SiteUp = serve.Up
	// SiteSuspect: recently failed (or recovering); still routable but
	// loses ties against Up replicas.
	SiteSuspect = serve.Suspect
	// SiteDown: excluded from routing until a probe succeeds.
	SiteDown = serve.Down
)

// ServeStats are the serving tier's cumulative counters (plans,
// reassignments, probes, migrations).
type ServeStats = serve.Stats

// Health returns the per-site health snapshot of a WithFailover
// deployment (nil otherwise).
func (s *System) Health() map[SiteID]SiteHealth {
	if s.tier == nil {
		return nil
	}
	return s.tier.Health()
}

// ServeStats returns the serving tier's counters (zero without
// WithFailover).
func (s *System) ServeStats() ServeStats {
	if s.tier == nil {
		return ServeStats{}
	}
	return s.tier.Stats()
}

// CheckHealth probes every site once, synchronously, updating the health
// snapshot — the deterministic alternative to waiting out the background
// prober after a known outage or recovery. No-op without WithFailover.
func (s *System) CheckHealth(ctx context.Context) {
	if s.tier != nil {
		s.tier.ProbeNow(ctx)
	}
}

// Rebalance runs one serving-tier rebalancing pass and reports how many
// fragments moved; see WithRebalancing for the policy.
func (s *System) Rebalance(ctx context.Context) (int, error) {
	if s.tier == nil {
		return 0, fmt.Errorf("parbox: Rebalance requires WithFailover")
	}
	return s.tier.RebalanceOnce(ctx)
}

// Replicas returns the current replica map of a replicated deployment —
// the live routing table under WithFailover (the rebalancer moves
// entries), the deploy-time map otherwise, nil for unreplicated systems.
func (s *System) Replicas() ReplicaMap {
	if s.tier != nil {
		return s.tier.Replicas()
	}
	if s.replicas == nil {
		return nil
	}
	out := make(ReplicaMap, len(s.replicas))
	for id, sites := range s.replicas {
		out[id] = append([]SiteID(nil), sites...)
	}
	return out
}

// DeployReplicated stores every replica of every fragment at its sites
// and returns a system whose queries run against the placement chosen by
// the strategy. Because ParBoX never moves data, switching strategies is
// free: call Replan.
func DeployReplicated(forest *Forest, replicas ReplicaMap, strategy PlacementStrategy, opts ...Option) (*System, error) {
	o := options{cost: cluster.DefaultCostModel()}
	for _, opt := range opts {
		opt(&o)
	}
	return deployReplicated(forest, replicas, strategy, o)
}

// replicateAssignment expands an Assignment into a ReplicaMap with n
// copies of every fragment, spread round-robin over the assignment's
// distinct sites starting at the fragment's assigned one.
func replicateAssignment(forest *Forest, assign Assignment, n int) (ReplicaMap, error) {
	seen := make(map[SiteID]bool, len(assign))
	var distinct []SiteID
	for _, site := range assign {
		if !seen[site] {
			seen[site] = true
			distinct = append(distinct, site)
		}
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	if n > len(distinct) {
		return nil, fmt.Errorf("parbox: WithReplication(%d) exceeds the assignment's %d distinct sites", n, len(distinct))
	}
	idx := make(map[SiteID]int, len(distinct))
	for i, site := range distinct {
		idx[site] = i
	}
	replicas := make(ReplicaMap, forest.Count())
	for _, id := range forest.IDs() {
		site, ok := assign[id]
		if !ok {
			return nil, fmt.Errorf("parbox: fragment %d is unassigned", id)
		}
		start := idx[site]
		for k := 0; k < n; k++ {
			replicas[id] = append(replicas[id], distinct[(start+k)%len(distinct)])
		}
	}
	return replicas, nil
}

// deployReplicated is the shared replicated-deployment path of Deploy
// (WithReplication) and DeployReplicated, including the serving tier of
// WithFailover deployments.
func deployReplicated(forest *Forest, replicas ReplicaMap, strategy PlacementStrategy, o options) (*System, error) {
	if o.dataDir != "" {
		return nil, fmt.Errorf("parbox: WithDurability is not supported for replicated deployments")
	}
	if o.rebalance && !o.failover {
		return nil, fmt.Errorf("parbox: WithRebalancing requires WithFailover")
	}
	if o.hedging && !o.failover {
		return nil, fmt.Errorf("parbox: WithHedging requires WithFailover (the serving tier plans the hedges)")
	}
	if o.hedging {
		o.serveOpts.Hedging = true
		o.serveOpts.HedgeDelay = o.hedgeDelay
	}
	c := cluster.New(o.cost)
	eng, err := core.DeployReplicated(c, forest, replicas, strategy)
	if err != nil {
		return nil, err
	}
	for _, siteID := range c.Sites() {
		site, _ := c.Site(siteID)
		views.RegisterHandlers(site, c)
		cluster.RegisterStatsHandler(site)
		if o.failover {
			serve.RegisterHandlers(site)
		}
		if o.admission > 0 {
			site.SetAdmission(cluster.AdmissionLimits{MaxInflight: o.admission})
		}
	}
	var trans cluster.Transport
	if o.wrapTransport != nil {
		// Route the engine (and below, the tier's probes) through the
		// wrapper, so injected faults hit exactly what queries use.
		trans = o.wrapTransport(c)
		eng = core.NewEngine(trans, eng.Coordinator(), eng.SourceTree(), c.Cost())
	}
	eng.EnableTripletCache(o.tripletCache)
	eng.SetMaxInflight(o.maxInflight)
	eng.SetRetryPolicy(o.retryPol)
	s := &System{
		cluster: c, engine: eng, forest: forest, replicas: replicas,
		coalesceDefault: o.coalesce, cacheEnabled: o.tripletCache,
		maxInflight: o.maxInflight, trans: trans, retryPol: o.retryPol,
	}
	if o.failover {
		tr := cluster.Transport(c)
		if trans != nil {
			tr = trans
		}
		tier := serve.NewTier(tr, eng.Coordinator(), forest, replicas, o.serveOpts)
		tier.AttachMetrics(c.Metrics())
		if o.rebalance {
			tier.StartRebalancer(o.rbOpts)
		}
		eng.SetTier(tier)
		tier.Start()
		s.tier = tier
	}
	s.sched = newScheduler(s, o.coalesceWindow, o.coalesceLanes)
	if o.introspect != "" {
		if err := s.startIntrospection(o.introspect); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Replan switches a replicated system to a different placement strategy
// without moving any data. Exec calls already in flight finish against
// the placement they started with.
func (s *System) Replan(strategy PlacementStrategy) error {
	if s.replicas == nil {
		return fmt.Errorf("parbox: Replan requires a system deployed with DeployReplicated")
	}
	eng, err := core.Replan(s.cluster, s.forest, s.replicas, strategy)
	if err != nil {
		return err
	}
	if s.trans != nil {
		eng = core.NewEngine(s.trans, eng.Coordinator(), eng.SourceTree(), s.cluster.Cost())
	}
	eng.EnableTripletCache(s.cacheEnabled)
	eng.SetMaxInflight(s.maxInflight)
	eng.SetRetryPolicy(s.retryPol)
	if s.tier != nil {
		eng.SetTier(s.tier)
	}
	s.mu.Lock()
	s.engine = eng
	s.mu.Unlock()
	return nil
}

// DefaultCostModel returns the cost model mimicking the paper's testbed.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// BuildSourceTree derives a source tree from a forest and an assignment,
// for callers wiring their own transports (see cmd/parbox-site for the
// TCP deployment).
func BuildSourceTree(f *Forest, assign Assignment) (*SourceTree, error) {
	return frag.BuildSourceTree(f, assign)
}

// ValidateQuery parses a query and reports the error, for CLI input
// checking.
func ValidateQuery(src string) error {
	_, err := xpath.Parse(src)
	if err != nil {
		return fmt.Errorf("invalid query: %w", err)
	}
	return nil
}

// Package parbox is a Go implementation of ParBoX — distributed evaluation
// of Boolean XPath queries over fragmented XML documents by partial
// evaluation — reproducing Buneman, Cong, Fan and Kementsietsidis, "Using
// Partial Evaluation in Distributed Query Evaluation", VLDB 2006.
//
// The idea: a document tree is decomposed into fragments stored at
// different sites; a Boolean XPath query is shipped whole to every site,
// which partially evaluates it over its fragments in parallel, treating
// the values at virtual nodes (pointers to remote sub-fragments) as
// Boolean variables. Each site returns compact Boolean formulas — not
// data — and the coordinator solves the resulting system of equations.
// Every site is visited exactly once and total network traffic is
// O(|q|·card(F)), independent of document size.
//
// # Quick start
//
//	doc, _ := parbox.ParseXMLString(`<a><b/><c>hi</c></a>`)
//	forest := parbox.NewForest(doc)
//	forest.Split(doc.Children[0]) // fragment the <b/> subtree
//	sys, _ := parbox.Deploy(forest, parbox.Assignment{0: "S0", 1: "S1"})
//	q, _ := parbox.ParseQuery(`//b && //c[text() = "hi"]`)
//	ok, _ := sys.Evaluate(context.Background(), q)
//
// Six algorithms are available (AlgoParBoX, AlgoNaiveCentralized,
// AlgoNaiveDistributed, AlgoHybrid, AlgoFullDist, AlgoLazy); Evaluate uses
// ParBoX, EvaluateWith selects explicitly and returns the full Report with
// per-run traffic, visit and timing accounting. Materialize creates an
// incrementally maintained Boolean XPath view (Section 5 of the paper).
package parbox

import (
	"context"
	"fmt"
	"io"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/frag"
	"repro/internal/views"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Node is one node of an XML document tree; see NewElement, ParseXML and
// the mutation helpers on the type.
type Node = xmltree.Node

// FragmentID identifies a fragment of a distributed document.
type FragmentID = xmltree.FragmentID

// Forest is a fragmented document: fragments linked by virtual nodes.
type Forest = frag.Forest

// SiteID names a site of the cluster.
type SiteID = frag.SiteID

// Assignment maps fragments to sites (the paper's function h).
type Assignment = frag.Assignment

// SourceTree is S_T: where each fragment lives and how fragments nest —
// the only structure the algorithms need.
type SourceTree = frag.SourceTree

// Report is the outcome and accounting of one distributed evaluation.
type Report = core.Report

// CostModel parameterizes the simulated LAN and CPU speeds.
type CostModel = cluster.CostModel

// MaintenanceCost is the accounting of one view-maintenance operation.
type MaintenanceCost = views.MaintenanceCost

// UpdateOp is a primitive content update (insert/delete/set-text) for
// incremental view maintenance.
type UpdateOp = views.UpdateOp

// Update operation kinds.
const (
	OpInsert  = views.OpInsert
	OpDelete  = views.OpDelete
	OpSetText = views.OpSetText
)

// Algorithm names for EvaluateWith.
const (
	AlgoParBoX           = core.AlgoParBoX
	AlgoNaiveCentralized = core.AlgoNaiveCentralized
	AlgoNaiveDistributed = core.AlgoNaiveDistributed
	AlgoHybrid           = core.AlgoHybrid
	AlgoFullDist         = core.AlgoFullDist
	AlgoLazy             = core.AlgoLazy
)

// Algorithms lists every implemented algorithm name.
func Algorithms() []string { return core.Algorithms() }

// NewElement builds an element node with the given label, text content and
// children.
func NewElement(label, text string, children ...*Node) *Node {
	return xmltree.NewElement(label, text, children...)
}

// ParseXML reads an XML document.
func ParseXML(r io.Reader) (*Node, error) { return xmltree.ParseXML(r) }

// ParseXMLString parses an XML document from a string.
func ParseXMLString(s string) (*Node, error) { return xmltree.ParseXMLString(s) }

// WriteXML serializes a document tree as XML.
func WriteXML(w io.Writer, n *Node) error { return xmltree.WriteXML(w, n) }

// NewForest wraps a document as a single-fragment forest; use
// Forest.Split to fragment it further.
func NewForest(root *Node) *Forest { return frag.NewForest(root) }

// Query is a parsed and compiled XBL Boolean XPath query.
type Query struct {
	expr xpath.Expr
	prog *xpath.Program
}

// ParseQuery parses an XBL query, e.g.
//
//	//stock[code = "GOOG" && sell = "376"]
//
// Conjunction is "&&"/"and", disjunction "||"/"or", negation "!"/"not";
// p = "str" abbreviates p/text() = "str"; label() = name tests the
// context node's label. See the package documentation of the grammar.
func ParseQuery(src string) (*Query, error) {
	e, err := xpath.Parse(src)
	if err != nil {
		return nil, err
	}
	p := xpath.Compile(e)
	p.Source = src
	return &Query{expr: e, prog: p}, nil
}

// MustQuery is ParseQuery panicking on error, for fixed query constants.
func MustQuery(src string) *Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

// String returns the query's surface form.
func (q *Query) String() string { return q.prog.Source }

// QListSize returns |QList(q)|, the paper's query-size measure.
func (q *Query) QListSize() int { return q.prog.QListSize() }

// Optimized returns a semantically identical query whose QList has been
// peephole-minimized (redundant ε-filters, identity conjunctions, double
// negations removed). Smaller QLists mean proportionally less work at
// every node of every fragment.
func (q *Query) Optimized() *Query {
	return &Query{expr: q.expr, prog: q.prog.Optimize()}
}

// EvaluateLocal evaluates the query at the root of a complete
// (unfragmented) document — the paper's optimal centralized algorithm,
// O(|T|·|q|).
func EvaluateLocal(root *Node, q *Query) (bool, error) {
	ans, _, err := eval.Evaluate(root, q.prog)
	return ans, err
}

// Option configures Deploy.
type Option func(*options)

type options struct {
	cost cluster.CostModel
}

// WithCostModel sets the simulated LAN/CPU cost model (latency, bandwidth,
// steps per second, real-sleep mode).
func WithCostModel(m CostModel) Option {
	return func(o *options) { o.cost = m }
}

// System is a deployed fragmented document: an in-process cluster of
// sites, each holding its assigned fragments and serving the ParBoX
// protocol.
type System struct {
	cluster *cluster.Cluster
	engine  *core.Engine

	// forest/replicas are retained for Replan on replicated deployments.
	forest   *Forest
	replicas ReplicaMap
}

// Deploy places a forest's fragments onto an in-process cluster per the
// assignment (every fragment must be assigned) and returns the system
// ready for queries. The coordinator is the site holding the root
// fragment.
func Deploy(forest *Forest, assign Assignment, opts ...Option) (*System, error) {
	o := options{cost: cluster.DefaultCostModel()}
	for _, opt := range opts {
		opt(&o)
	}
	c := cluster.New(o.cost)
	eng, err := core.Deploy(c, forest, assign)
	if err != nil {
		return nil, err
	}
	for _, siteID := range eng.SourceTree().Sites() {
		site, _ := c.Site(siteID)
		views.RegisterHandlers(site, c)
	}
	return &System{cluster: c, engine: eng}, nil
}

// AddSite creates an additional (initially empty) site with the full
// protocol registered, e.g. as the target of a View.Split re-assignment.
func (s *System) AddSite(id SiteID) {
	site := s.cluster.AddSite(id)
	core.RegisterHandlers(site, s.cluster, s.cluster.Cost())
	views.RegisterHandlers(site, s.cluster)
}

// Evaluate runs the query with the ParBoX algorithm and returns the
// Boolean answer.
func (s *System) Evaluate(ctx context.Context, q *Query) (bool, error) {
	rep, err := s.engine.ParBoX(ctx, q.prog)
	if err != nil {
		return false, err
	}
	return rep.Answer, nil
}

// EvaluateWith runs the query with the named algorithm and returns the
// full report.
func (s *System) EvaluateWith(ctx context.Context, algo string, q *Query) (Report, error) {
	return s.engine.Run(ctx, algo, q.prog)
}

// SelectionResult is the outcome of a distributed data-selection query.
type SelectionResult = core.SelectReport

// Select evaluates a data-selection path query (the Section 8 extension):
// the result identifies every selected node by its fragment and
// child-index path within that fragment. Pass 1 is ordinary ParBoX; pass 2
// propagates the path automaton top-down, skipping fragments no match can
// reach.
func (s *System) Select(ctx context.Context, pathQuery string) (SelectionResult, error) {
	sp, err := xpath.CompileSelectString(pathQuery)
	if err != nil {
		return SelectionResult{}, err
	}
	return s.engine.SelectParBoX(ctx, sp)
}

// BatchResult is the outcome of one batch evaluation round.
type BatchResult = core.BatchReport

// EvaluateBatch answers many Boolean queries with a single ParBoX round:
// the queries compile into one shared QList (overlapping subexpressions
// are evaluated once per node), each site is visited once for the whole
// batch, and one equation solve yields every answer — the natural mode
// for a dissemination system's subscription set.
func (s *System) EvaluateBatch(ctx context.Context, queries []*Query) (BatchResult, error) {
	exprs := make([]xpath.Expr, len(queries))
	for i, q := range queries {
		exprs[i] = q.expr
	}
	prog, roots := xpath.CompileBatch(exprs)
	return s.engine.ParBoXBatch(ctx, prog, roots)
}

// CountResult is the outcome of a distributed COUNT aggregation.
type CountResult = core.CountReport

// Count counts the nodes a path query selects without shipping their
// identities anywhere — the Section 8 aggregation remark realized:
// traffic stays O(|q|·card(F)) no matter how many nodes match.
func (s *System) Count(ctx context.Context, pathQuery string) (CountResult, error) {
	sp, err := xpath.CompileSelectString(pathQuery)
	if err != nil {
		return CountResult{}, err
	}
	return s.engine.CountParBoX(ctx, sp)
}

// SourceTree returns the deployed document's source tree.
func (s *System) SourceTree() *SourceTree { return s.engine.SourceTree() }

// Coordinator returns the coordinating site (the root fragment's site).
func (s *System) Coordinator() SiteID { return s.engine.Coordinator() }

// TotalBytes returns the cumulative remote traffic since deployment (or
// the last ResetMetrics).
func (s *System) TotalBytes() int64 { return s.cluster.Metrics().TotalBytes() }

// ResetMetrics clears the cluster-wide accounting.
func (s *System) ResetMetrics() { s.cluster.Metrics().Reset() }

// MetricsTable renders the per-site accounting as a table.
func (s *System) MetricsTable() string { return s.cluster.Metrics().String() }

// View is a materialized, incrementally maintained Boolean XPath view.
type View struct {
	v *views.View
}

// Materialize computes and caches the query's answer as a view
// (Section 5): subsequent Answer calls are free; Update/Split/Merge
// maintain it with recomputation localized to the changed fragment.
func (s *System) Materialize(ctx context.Context, q *Query) (*View, error) {
	v, err := views.Materialize(ctx, s.cluster, s.engine.Coordinator(), s.engine.SourceTree(), q.prog)
	if err != nil {
		return nil, err
	}
	return &View{v: v}, nil
}

// Answer returns the cached answer.
func (v *View) Answer() bool { return v.v.Answer() }

// Update applies content updates to one fragment and incrementally
// maintains the answer; only that fragment's site is contacted.
func (v *View) Update(ctx context.Context, id FragmentID, ops []UpdateOp) (MaintenanceCost, error) {
	return v.v.Update(ctx, id, ops)
}

// Split moves the subtree at path (child indices from the fragment root)
// into a new fragment assigned to target; the answer is unaffected.
func (v *View) Split(ctx context.Context, id FragmentID, path []int, target SiteID) (FragmentID, MaintenanceCost, error) {
	return v.v.Split(ctx, id, path, target)
}

// Merge absorbs sub-fragment child into fragment id.
func (v *View) Merge(ctx context.Context, id, child FragmentID) (MaintenanceCost, error) {
	return v.v.Merge(ctx, id, child)
}

// PathOf computes the child-index path addressing a node within its
// fragment, for use with View.Update and View.Split.
func PathOf(node *Node) []int { return views.PathOf(node) }

// ReplicaMap lists, per fragment, every site holding a copy.
type ReplicaMap = core.ReplicaMap

// PlacementStrategy selects replicas before a query runs.
type PlacementStrategy = core.PlacementStrategy

// Replica placement strategies.
const (
	// PlaceFirst uses each fragment's first listed replica.
	PlaceFirst = core.PlaceFirst
	// PlaceMinSites minimizes the number of sites consulted.
	PlaceMinSites = core.PlaceMinSites
	// PlaceBalanced minimizes the largest per-site data share (the
	// paper's parallel-computation bound).
	PlaceBalanced = core.PlaceBalanced
)

// DeployReplicated stores every replica of every fragment at its sites
// and returns a system whose queries run against the placement chosen by
// the strategy. Because ParBoX never moves data, switching strategies is
// free: call Replan.
func DeployReplicated(forest *Forest, replicas ReplicaMap, strategy PlacementStrategy, opts ...Option) (*System, error) {
	o := options{cost: cluster.DefaultCostModel()}
	for _, opt := range opts {
		opt(&o)
	}
	c := cluster.New(o.cost)
	eng, err := core.DeployReplicated(c, forest, replicas, strategy)
	if err != nil {
		return nil, err
	}
	for _, siteID := range c.Sites() {
		site, _ := c.Site(siteID)
		views.RegisterHandlers(site, c)
	}
	sys := &System{cluster: c, engine: eng}
	sys.forest = forest
	sys.replicas = replicas
	return sys, nil
}

// Replan switches a replicated system to a different placement strategy
// without moving any data.
func (s *System) Replan(strategy PlacementStrategy) error {
	if s.replicas == nil {
		return fmt.Errorf("parbox: Replan requires a system deployed with DeployReplicated")
	}
	eng, err := core.Replan(s.cluster, s.forest, s.replicas, strategy)
	if err != nil {
		return err
	}
	s.engine = eng
	return nil
}

// DefaultCostModel returns the cost model mimicking the paper's testbed.
func DefaultCostModel() CostModel { return cluster.DefaultCostModel() }

// BuildSourceTree derives a source tree from a forest and an assignment,
// for callers wiring their own transports (see cmd/parbox-site for the
// TCP deployment).
func BuildSourceTree(f *Forest, assign Assignment) (*SourceTree, error) {
	return frag.BuildSourceTree(f, assign)
}

// ValidateQuery parses a query and reports the error, for CLI input
// checking.
func ValidateQuery(src string) error {
	_, err := xpath.Parse(src)
	if err != nil {
		return fmt.Errorf("invalid query: %w", err)
	}
	return nil
}
